//! Cluster construction: wires nodes, RPC endpoints and a DM backend into
//! one of the paper's three systems (eRPC baseline, DmRPC-net, DmRPC-CXL).

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use dmcommon::CopyMode;
use dmcxl::{CxlFabric, CxlHostConfig};
use dmnet::{DmNetClient, DmServer, DmServerConfig};
use dmrpc::{DmHandle, DmRpc};
use memsim::{ModelParams, NodeMemory};
use rpclib::{RpcBuilder, RpcConfig};
use simcore::CpuPool;
use simnet::{Addr, FabricConfig, Network, NicConfig, NodeId};
use telemetry::{InstallGuard, Registry, Tracer};

/// Which of the paper's systems a cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// Pass-by-value eRPC (the baseline).
    Erpc,
    /// DmRPC over network-attached DM servers.
    DmNet,
    /// DmRPC over the CXL G-FAM pool.
    DmCxl,
}

impl SystemKind {
    /// All three systems, in the paper's presentation order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Erpc, SystemKind::DmNet, SystemKind::DmCxl];

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Erpc => "eRPC",
            SystemKind::DmNet => "DmRPC-net",
            SystemKind::DmCxl => "DmRPC-CXL",
        }
    }
}

/// How DmNet endpoints place `put_ref` data across the DM pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmPlacement {
    /// Round-robin across the pool (paper §VI-A; the default, preserving
    /// the pre-sharding wire behavior exactly).
    RoundRobin,
    /// Consistent-hash sharded placement with ownership migration
    /// (DESIGN.md §13). Every endpoint builds the same ring off the
    /// cluster seed and routes refs locally; workloads ride it unchanged.
    Sharded(dmnet::ShardConfig),
}

/// One compute server: node id plus its CPU and memory models.
#[derive(Clone)]
pub struct ServiceNode {
    /// Fabric node.
    pub id: NodeId,
    /// Application cores (paper testbed: 12 usable cores per socket).
    pub cpu: CpuPool,
    /// Memory system (traffic counters feed Fig. 6b).
    pub mem: NodeMemory,
}

/// Cluster-wide tuning.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Cores per compute server.
    pub cores_per_node: u64,
    /// Copy policy of the DM backend (COW vs the `-copy` ablation).
    pub copy_mode: CopyMode,
    /// DM-server worker cores (DmRPC-net).
    pub dm_server_cores: u64,
    /// Pool capacity in pages per DM server / for the whole G-FAM device.
    pub dm_capacity_pages: usize,
    /// Pass-by-reference threshold override (None = dmrpc default).
    pub threshold: Option<u64>,
    /// RPC tuning applied to every endpoint created via
    /// [`Cluster::endpoint`] (chaos runs shorten RTOs and set a retry
    /// budget so faulted requests fail in bounded time).
    pub rpc: RpcConfig,
    /// DM-server lease TTL (DmNet only). `None` (default) disables
    /// lease-based reclamation, matching the pre-lease wire format.
    pub lease_ttl: Option<std::time::Duration>,
    /// Client-side translation/ref cache and control-op coalescer applied
    /// to every DmNet endpoint (DESIGN.md §9). Defaults to all-on — the
    /// DmRPC-net system is measured with its cached client; benches ablate
    /// it by passing [`dmnet::CacheConfig::default`] (all off).
    pub dm_client_cache: dmnet::CacheConfig,
    /// Durable DM tier (DESIGN.md §12), applied to every DmNet server.
    /// Defaults to [`dmnet::WalConfig::from_env`] (`DM_DURABLE=1` turns on
    /// the zero-cost log, otherwise off).
    pub dm_durability: Option<dmnet::WalConfig>,
    /// Ref placement policy for DmNet endpoints (DESIGN.md §13). Defaults
    /// to [`DmPlacement::RoundRobin`], the paper's scheme.
    pub dm_placement: DmPlacement,
    /// DM-server admission control + CoDel shedding (DESIGN.md §14).
    /// `None` (default) admits everything — schedule-identical to a
    /// cluster built before overload control existed.
    pub dm_admission: Option<dmnet::AdmissionConfig>,
    /// Client-side token limiting and `Busy` retry for every DmNet
    /// endpoint (DESIGN.md §14). Default: off.
    pub dm_client_limit: dmnet::ClientLimitConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores_per_node: 12,
            copy_mode: CopyMode::CopyOnWrite,
            dm_server_cores: 4,
            dm_capacity_pages: 65_536, // 256 MiB
            threshold: None,
            rpc: RpcConfig::default(),
            lease_ttl: None,
            dm_client_cache: dmnet::CacheConfig::all_on(),
            dm_durability: dmnet::WalConfig::from_env(),
            dm_placement: DmPlacement::RoundRobin,
            dm_admission: None,
            dm_client_limit: dmnet::ClientLimitConfig::default(),
        }
    }
}

/// A simulated deployment of one system.
pub struct Cluster {
    /// The fabric.
    pub net: Network,
    /// Shared memory-model parameters (CXL latency knob lives here).
    pub params: ModelParams,
    /// Which system this cluster runs.
    pub kind: SystemKind,
    config: ClusterConfig,
    /// Simulation seed the cluster was built with; sharded endpoints
    /// derive their placement ring from it.
    seed: u64,
    nodes: RefCell<Vec<ServiceNode>>,
    /// DM servers (DmNet only).
    pub dm_servers: Vec<Rc<DmServer>>,
    dm_pool: Vec<Addr>,
    fabric: Option<CxlFabric>,
    endpoints: RefCell<Vec<Weak<DmRpc>>>,
    /// Installed tracer plus its thread-local activation guard (the guard
    /// deactivates tracing when the cluster drops).
    tracing: RefCell<Option<(Rc<Tracer>, InstallGuard)>>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Handlers close over their endpoints, which own the Rpc that owns
        // the handlers: an Rc cycle. Benches build many clusters in one
        // process, so break the cycle explicitly at teardown.
        for ep in self.endpoints.borrow().iter() {
            if let Some(ep) = ep.upgrade() {
                ep.rpc().shutdown();
            }
        }
        for s in &self.dm_servers {
            s.shutdown();
        }
        if let Some(f) = &self.fabric {
            f.coordinator().shutdown();
        }
    }
}

impl Cluster {
    /// Build a cluster for `kind`. For DmNet, `n_dm_servers` memory nodes
    /// are created (the paper uses two); for DmCxl one coordinator node is
    /// created. Must be called inside the simulation.
    pub fn new(kind: SystemKind, n_dm_servers: usize, config: ClusterConfig, seed: u64) -> Cluster {
        let net = Network::new(FabricConfig::default(), seed);
        let params = ModelParams::new();
        let mut dm_servers = Vec::new();
        let mut dm_pool = Vec::new();
        let mut fabric = None;
        match kind {
            SystemKind::Erpc => {}
            SystemKind::DmNet => {
                let cfg = DmServerConfig {
                    capacity_pages: config.dm_capacity_pages,
                    copy_mode: config.copy_mode,
                    cores: config.dm_server_cores,
                    lease_ttl: config.lease_ttl,
                    durability: config.dm_durability,
                    admission: config.dm_admission,
                    // Fine-grained coherence is one knob: a cluster whose
                    // clients fold version trailers gets servers that emit
                    // them (the trailer changes the wire format, so the two
                    // sides must agree). The server's lease grant mirrors
                    // the client's serve-side bound.
                    coherence: config.dm_client_cache.fine_grained.then(|| {
                        dmnet::CoherenceConfig {
                            read_lease: config.dm_client_cache.read_lease,
                            ..Default::default()
                        }
                    }),
                    ..Default::default()
                };
                // A DmNet cluster without memory servers is a configuration
                // bug; fail loudly instead of silently provisioning one.
                assert!(
                    n_dm_servers >= 1,
                    "DmNet cluster needs at least one DM server (got 0)"
                );
                for i in 0..n_dm_servers {
                    let node = net.add_node(format!("dm{i}"), NicConfig::default());
                    let mem = NodeMemory::with_defaults(format!("dm{i}"), params.clone());
                    let s = DmServer::start(&net, node, mem, cfg);
                    dm_pool.push(s.addr());
                    dm_servers.push(s);
                }
            }
            SystemKind::DmCxl => {
                let coord = net.add_node("coord", NicConfig::default());
                let host_cfg = CxlHostConfig {
                    copy_mode: config.copy_mode,
                    ..Default::default()
                };
                fabric = Some(CxlFabric::new(
                    &net,
                    coord,
                    config.dm_capacity_pages,
                    params.clone(),
                    host_cfg,
                ));
            }
        }
        Cluster {
            net,
            params,
            kind,
            config,
            seed,
            nodes: RefCell::new(Vec::new()),
            dm_servers,
            dm_pool,
            fabric,
            endpoints: RefCell::new(Vec::new()),
            tracing: RefCell::new(None),
        }
    }

    /// Install a deterministic tracer for this cluster's runs: `seed` feeds
    /// span-id generation, and one request in `sample_every` is head-sampled
    /// (0 records nothing). The tracer stays active until the cluster drops
    /// or tracing is enabled again; the handle is also returned for export.
    pub fn enable_tracing(&self, seed: u64, sample_every: u64) -> Rc<Tracer> {
        let t = Rc::new(Tracer::new(seed, sample_every));
        let guard = t.install();
        *self.tracing.borrow_mut() = Some((t.clone(), guard));
        t
    }

    /// The installed tracer, if [`Cluster::enable_tracing`] was called.
    pub fn tracer(&self) -> Option<Rc<Tracer>> {
        self.tracing.borrow().as_ref().map(|(t, _)| t.clone())
    }

    /// Export the recorded spans as Chrome trace-event JSON (Perfetto /
    /// `chrome://tracing` loadable), naming every node the cluster knows.
    /// `None` unless tracing was enabled.
    pub fn trace_json(&self) -> Option<String> {
        let tracing = self.tracing.borrow();
        let (t, _) = tracing.as_ref()?;
        for n in self.nodes.borrow().iter() {
            t.set_node_name(n.id.0, self.net.node_name(n.id));
        }
        for s in &self.dm_servers {
            let node = s.addr().node;
            t.set_node_name(node.0, self.net.node_name(node));
        }
        if let Some(f) = &self.fabric {
            let node = f.coordinator().addr().node;
            t.set_node_name(node.0, self.net.node_name(node));
        }
        Some(t.export_chrome_json())
    }

    /// Build a metrics registry over every live stat source in the cluster
    /// under stable hierarchical names: `net.*` fabric counters,
    /// `node.<name>.*` per-server memory traffic, `rpc.<name>.<port>.*`
    /// endpoint counters, `dmclient.<name>.<port>.*` cache and wire
    /// counters, `dmserver.<i>.*` and `gfam.*` backend gauges. Gauges read
    /// live values, so one registry serves warmup deltas and final dumps.
    pub fn metrics(&self) -> Registry {
        let reg = Registry::new();
        {
            let net = self.net.clone();
            reg.register_gauge("net.delivered", move || net.delivered());
        }
        for n in self.nodes.borrow().iter() {
            let name = self.net.node_name(n.id);
            let mem = n.mem.clone();
            reg.register_gauge(format!("node.{name}.mem.traffic_bytes"), move || {
                mem.traffic_bytes()
            });
        }
        for ep in self.endpoints() {
            let addr = ep.addr();
            let name = self.net.node_name(addr.node);
            let base = format!("rpc.{}.{}", name, addr.port);
            let s = ep.rpc().stats();
            reg.register_counter(format!("{base}.calls_completed"), &s.calls_completed);
            reg.register_counter(format!("{base}.retransmits"), &s.retransmits);
            reg.register_counter(format!("{base}.requests_handled"), &s.requests_handled);
            reg.register_counter(format!("{base}.timeouts"), &s.timeouts);
            if let Some(DmHandle::Net(c)) = ep.dm() {
                let base = format!("dmclient.{}.{}", name, addr.port);
                let cache = c.clone();
                reg.register_gauge(format!("{base}.cache.hits"), move || {
                    cache.cache_stats().hits()
                });
                let cache = c.clone();
                reg.register_gauge(format!("{base}.cache.misses"), move || {
                    cache.cache_stats().misses()
                });
                let cache = c.clone();
                reg.register_gauge(format!("{base}.cache.invalidations"), move || {
                    cache.cache_stats().invalidations()
                });
                let cache = c.clone();
                reg.register_gauge(format!("{base}.cache.batched_ops"), move || {
                    cache.cache_stats().batched_ops()
                });
                let cache = c.clone();
                reg.register_gauge(format!("{base}.cache.batches"), move || {
                    cache.cache_stats().batches()
                });
                for ty in [
                    dmnet::proto::req::RELEASE_REF,
                    dmnet::proto::req::MAP_REF,
                    dmnet::proto::req::READ_REF,
                    dmnet::proto::req::BATCH,
                ] {
                    let cache = c.clone();
                    reg.register_gauge(
                        format!("{base}.wire.{}", dmnet::proto::req_name(ty)),
                        move || cache.wire_count(ty),
                    );
                }
            }
        }
        // Fine-grained coherence view (DESIGN.md §15), registered only when
        // the cluster runs it so default-config telemetry dumps are
        // unchanged: cluster-wide cache outcomes plus invalidation mix.
        if self.config.dm_client_cache.fine_grained {
            let stat = |eps: Vec<Weak<DmRpc>>, f: fn(&DmNetClient) -> u64| {
                move || {
                    eps.iter()
                        .filter_map(|w| w.upgrade())
                        .filter_map(|ep| match ep.dm() {
                            Some(DmHandle::Net(c)) => Some(f(c)),
                            _ => None,
                        })
                        .sum::<u64>()
                }
            };
            let eps = self.endpoints.borrow().clone();
            reg.register_gauge(
                "dm.cache.hits",
                stat(eps.clone(), |c| c.cache_stats().hits()),
            );
            reg.register_gauge(
                "dm.cache.misses",
                stat(eps.clone(), |c| c.cache_stats().misses()),
            );
            reg.register_gauge(
                "dm.cache.targeted_inv",
                stat(eps.clone(), |c| c.cache_stats().targeted_inv()),
            );
            reg.register_gauge(
                "dm.cache.broadcast_inv",
                stat(eps, |c| c.cache_stats().broadcast_inv()),
            );
            for (i, s) in self.dm_servers.iter().enumerate() {
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.inv_pushed"), move || {
                    srv.invalidations_pushed()
                });
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.inv_broadcasts"), move || {
                    srv.coherence_broadcasts()
                });
            }
        }
        for (i, s) in self.dm_servers.iter().enumerate() {
            let srv = s.clone();
            reg.register_gauge(format!("dmserver.{i}.leases_reclaimed"), move || {
                srv.leases_reclaimed()
            });
            let srv = s.clone();
            reg.register_gauge(format!("dmserver.{i}.epoch"), move || srv.epoch());
            let srv = s.clone();
            reg.register_gauge(format!("dmserver.{i}.traffic_bytes"), move || {
                srv.memory().traffic_bytes()
            });
            if s.wal().is_some() {
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.wal.records"), move || {
                    srv.wal().map_or(0, |w| w.records())
                });
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.wal.log_bytes"), move || {
                    srv.wal().map_or(0, |w| w.log_bytes())
                });
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.wal.compactions"), move || {
                    srv.wal().map_or(0, |w| w.compactions())
                });
                let srv = s.clone();
                reg.register_gauge(format!("dmserver.{i}.recoveries"), move || srv.recoveries());
            }
            // Sharded-plane counters (DESIGN.md §13). `ops` counts every
            // request the server dispatched, so the gauge doubles as the
            // per-shard load-balance view even with sharding off.
            let srv = s.clone();
            reg.register_gauge(format!("dm.shard.{i}.ops"), move || srv.ops_served());
            let srv = s.clone();
            reg.register_gauge(format!("dm.shard.{i}.migrations"), move || srv.migrations());
            let srv = s.clone();
            reg.register_gauge(format!("dm.shard.{i}.redirects"), move || srv.redirects());
            // Overload-control counters (DESIGN.md §14): 0 unless the
            // cluster was built with `dm_admission`.
            let srv = s.clone();
            reg.register_gauge(format!("dm.shard.{i}.rejected"), move || {
                srv.admission_rejected()
            });
            let srv = s.clone();
            reg.register_gauge(format!("dm.shard.{i}.shed"), move || srv.admission_shed());
        }
        if let Some(f) = &self.fabric {
            let g = f.gfam().clone();
            reg.register_gauge("gfam.traffic_bytes", move || g.traffic_bytes());
        }
        reg
    }

    /// The CXL fabric, if this is a DmCxl cluster.
    pub fn cxl_fabric(&self) -> Option<&CxlFabric> {
        self.fabric.as_ref()
    }

    /// Add a compute server.
    pub fn add_server(&self, name: impl Into<String>) -> ServiceNode {
        let name = name.into();
        let id = self.net.add_node(name.clone(), NicConfig::default());
        let node = ServiceNode {
            id,
            cpu: CpuPool::new(self.config.cores_per_node),
            mem: NodeMemory::with_defaults(name, self.params.clone()),
        };
        self.nodes.borrow_mut().push(node.clone());
        node
    }

    /// All compute servers added so far.
    pub fn servers(&self) -> Vec<ServiceNode> {
        self.nodes.borrow().clone()
    }

    /// Create a DmRPC endpoint for one service process on `node`, with the
    /// cluster's transfer policy.
    pub async fn endpoint(&self, node: &ServiceNode, port: u16) -> Rc<DmRpc> {
        self.endpoint_with_config(node, port, self.config.rpc).await
    }

    /// Like [`Cluster::endpoint`] with an RPC config override.
    pub async fn endpoint_with_config(
        &self,
        node: &ServiceNode,
        port: u16,
        rpc_config: RpcConfig,
    ) -> Rc<DmRpc> {
        let rpc = RpcBuilder::new(&self.net, node.id, port)
            .config(rpc_config)
            .cpu(node.cpu.clone())
            .mem(node.mem.clone())
            .build();
        let ep = match self.kind {
            SystemKind::Erpc => DmRpc::baseline(rpc),
            SystemKind::DmNet => {
                let dm = match self.config.dm_placement {
                    DmPlacement::RoundRobin => {
                        DmNetClient::connect_limited(
                            rpc.clone(),
                            self.dm_pool.clone(),
                            self.config.dm_client_cache,
                            self.config.dm_client_limit,
                        )
                        .await
                    }
                    DmPlacement::Sharded(shard) => {
                        DmNetClient::connect_sharded_limited(
                            rpc.clone(),
                            self.dm_pool.clone(),
                            self.config.dm_client_cache,
                            shard,
                            self.seed,
                            self.config.dm_client_limit,
                        )
                        .await
                    }
                }
                .expect("DM pool registration");
                let handle = DmHandle::Net(Rc::new(dm));
                match self.config.threshold {
                    Some(t) => DmRpc::with_threshold(rpc, handle, t),
                    None => DmRpc::new(rpc, handle),
                }
            }
            SystemKind::DmCxl => {
                let fabric = self.fabric.as_ref().expect("cxl fabric present");
                let handle = DmHandle::Cxl(fabric.new_host(rpc.clone()));
                match self.config.threshold {
                    Some(t) => DmRpc::with_threshold(rpc, handle, t),
                    None => DmRpc::new(rpc, handle),
                }
            }
        };
        self.endpoints.borrow_mut().push(Rc::downgrade(&ep));
        ep
    }

    /// Every endpoint created so far that is still alive (chaos hooks use
    /// this to crash clients and verify lease reclamation).
    pub fn endpoints(&self) -> Vec<Rc<DmRpc>> {
        self.endpoints
            .borrow()
            .iter()
            .filter_map(|w| w.upgrade())
            .collect()
    }

    /// Reset every statistics counter in the cluster (between warmup and
    /// measurement).
    pub fn reset_stats(&self) {
        self.net.reset_stats();
        for n in self.nodes.borrow().iter() {
            n.mem.reset_stats();
            n.cpu.reset_stats();
        }
        for s in &self.dm_servers {
            s.memory().reset_stats();
        }
        if let Some(f) = &self.fabric {
            f.gfam().reset_stats();
        }
    }

    /// Mean handler service time in µs for the endpoint at `(node, port)`
    /// and `req_type`, if that endpoint exists and has served requests.
    /// Powers per-tier breakdown reports.
    pub fn handler_mean_us(&self, node: NodeId, port: u16, req_type: u8) -> Option<f64> {
        for ep in self.endpoints.borrow().iter() {
            if let Some(ep) = ep.upgrade() {
                let addr = ep.addr();
                if addr.node == node && addr.port == port {
                    return ep.rpc().handler_time(req_type).map(|h| h.mean() / 1e3);
                }
            }
        }
        None
    }

    /// Total DM memory traffic (DM servers for net, G-FAM for CXL).
    pub fn dm_traffic_bytes(&self) -> u64 {
        let net_traffic: u64 = self
            .dm_servers
            .iter()
            .map(|s| s.memory().traffic_bytes())
            .sum();
        let cxl_traffic = self
            .fabric
            .as_ref()
            .map(|f| f.gfam().traffic_bytes())
            .unwrap_or(0);
        net_traffic + cxl_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simcore::Sim;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.cores_per_node, 12, "12 usable cores per socket");
        assert_eq!(c.copy_mode, CopyMode::CopyOnWrite);
        assert!(c.threshold.is_none());
    }

    #[test]
    fn stats_reset_clears_everything() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 1);
            let node = cluster.add_server("svc");
            let ep = cluster.endpoint(&node, 100).await;
            let v = ep.make_value(Bytes::from(vec![1u8; 16384])).await.unwrap();
            ep.fetch(&v).await.unwrap();
            assert!(cluster.dm_traffic_bytes() > 0);
            cluster.reset_stats();
            assert_eq!(cluster.dm_traffic_bytes(), 0);
            assert_eq!(cluster.net.node_tx_bytes(node.id), 0);
            ep.release(&v).await.unwrap();
        });
    }

    #[test]
    fn handler_mean_us_finds_the_right_endpoint() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 1);
            let sn = cluster.add_server("server");
            let cn = cluster.add_server("client");
            let server = cluster.endpoint(&sn, 100).await;
            server.rpc().register(9, |ctx| async move {
                simcore::sleep(std::time::Duration::from_micros(5)).await;
                ctx.payload
            });
            let client = cluster.endpoint(&cn, 100).await;
            for _ in 0..4 {
                client
                    .rpc()
                    .call(server.addr(), 9, Bytes::from_static(b"x"))
                    .await
                    .unwrap();
            }
            let mean = cluster
                .handler_mean_us(sn.id, 100, 9)
                .expect("histogram exists");
            assert!((mean - 5.0).abs() < 0.5, "mean {mean}");
            assert!(cluster.handler_mean_us(sn.id, 100, 8).is_none());
            assert!(cluster.handler_mean_us(cn.id, 101, 9).is_none());
        });
    }

    #[test]
    fn drop_breaks_handler_cycles() {
        let sim = Sim::new();
        let weak = sim.block_on(async {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 1);
            let node = cluster.add_server("svc");
            let ep = cluster.endpoint(&node, 100).await;
            // A handler that closes over the endpoint: the classic cycle.
            let me = ep.clone();
            ep.rpc().register(1, move |ctx| {
                let _keep = me.clone();
                async move { ctx.payload }
            });
            let weak = Rc::downgrade(&ep);
            drop(ep);
            drop(cluster); // Drop impl shuts down every endpoint's handlers
            weak
        });
        assert!(
            weak.upgrade().is_none(),
            "endpoint leaked: the handler cycle was not broken"
        );
    }
}
