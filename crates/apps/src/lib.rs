//! # apps — the paper's workloads as reusable applications
//!
//! Every evaluation workload from the paper, deployable on any of the three
//! systems ([`cluster::SystemKind`]):
//!
//! | module | paper section | figure |
//! |---|---|---|
//! | [`chain`] | §VI-B nested RPC calls | Fig. 5 |
//! | [`load_balancer`] | §VI-B application-layer LB | Fig. 6 |
//! | [`sharebench`] | §VI-D caller/callee sharing (incl. Ray/Spark) | Figs. 8, 12a |
//! | [`image_pipeline`] | §VI-E 7-tier cloud image processing | Figs. 9, 10, 12b |
//! | [`social`] | §VI-F DeathStarBench social network | Fig. 11 |
//! | [`block_storage`] | §I motivating workload: replicated block storage | (extension) |
//! | [`shuffle`] | §I/§III motivating workload: Spark-style all-to-all shuffle | (extension) |
//!
//! [`cluster`] wires nodes + RPC + DM backends; [`workload`] provides
//! closed-/open-loop drivers and latency measurement.

#![warn(missing_docs)]

pub mod block_storage;
pub mod chain;
pub mod cluster;
pub mod codec;
pub mod image_pipeline;
pub mod load_balancer;
pub mod sharebench;
pub mod shuffle;
pub mod social;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, DmPlacement, ServiceNode, SystemKind};
pub use workload::{run_closed_loop, run_open_loop, Measured, Recorder, TraceRecord};
