//! The application-layer load balancer (paper §VI-B, Fig. 6).
//!
//! Three generator servers issue requests carrying `size`-byte arguments to
//! one LB server, which forwards each request round-robin to one of three
//! worker servers; workers materialize the argument and acknowledge. The
//! interesting metrics live on the **LB node**: request throughput and
//! memory-bandwidth occupation — a pure data mover suffers under
//! pass-by-value ("~60% of datacenter traffic goes through a load
//! balancer").

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use dmcommon::DmResult;
use dmrpc::{DmRpc, Value};
use simnet::Addr;

use crate::cluster::{Cluster, ServiceNode};

/// Request type for LB traffic.
pub const LB_REQ: u8 = 2;

/// A deployed load-balancer application.
pub struct LbApp {
    /// Generator endpoints (one per generator server).
    pub generators: Vec<Rc<DmRpc>>,
    /// The LB's address.
    pub lb: Addr,
    /// The LB server (memory counters for Fig. 6b).
    pub lb_node: ServiceNode,
    /// Worker server handles.
    pub workers: Vec<ServiceNode>,
}

/// Deploy `n_generators` generators, one LB, and `n_workers` workers.
pub async fn build_lb(cluster: &Cluster, n_generators: usize, n_workers: usize) -> LbApp {
    // Workers.
    let mut worker_eps = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n_workers {
        let node = cluster.add_server(format!("worker{i}"));
        let ep = cluster.endpoint(&node, 100).await;
        let wep = ep.clone();
        let wnode = node.clone();
        ep.rpc().register(LB_REQ, move |ctx| {
            let wep = wep.clone();
            let wnode = wnode.clone();
            async move {
                // The worker actually uses the argument.
                if let Ok(v) = Value::decode(&ctx.payload) {
                    if let Ok(data) = wep.fetch(&v).await {
                        wnode.mem.touch(data.len() as u64).await;
                    }
                }
                Value::Inline(Bytes::from_static(b"ok")).encode()
            }
        });
        worker_eps.push(ep);
        workers.push(node);
    }
    // Load balancer: forwards without touching the argument.
    let lb_node = cluster.add_server("lb");
    let lb_ep = cluster.endpoint(&lb_node, 100).await;
    let next = Rc::new(Cell::new(0usize));
    let targets: Vec<Addr> = worker_eps.iter().map(|e| e.addr()).collect();
    {
        let lb = lb_ep.clone();
        lb_ep.rpc().register(LB_REQ, move |ctx| {
            let lb = lb.clone();
            let targets = targets.clone();
            let next = next.clone();
            async move {
                let i = next.get();
                next.set((i + 1) % targets.len());
                match lb.rpc().call(targets[i], LB_REQ, ctx.payload).await {
                    Ok(resp) => resp,
                    Err(_) => Value::Inline(Bytes::new()).encode(),
                }
            }
        });
    }
    // Generators.
    let mut generators = Vec::new();
    for i in 0..n_generators {
        let node = cluster.add_server(format!("gen{i}"));
        generators.push(cluster.endpoint(&node, 100).await);
    }
    LbApp {
        generators,
        lb: lb_ep.addr(),
        lb_node,
        workers,
    }
}

impl LbApp {
    /// One request from generator `g` with a fresh argument.
    pub async fn request(&self, g: usize, payload: &Bytes) -> DmResult<()> {
        let ep = &self.generators[g % self.generators.len()];
        let v = ep.make_value(payload.clone()).await?;
        ep.call(self.lb, LB_REQ, &v).await?;
        ep.release_async(v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SystemKind};
    use simcore::Sim;
    use std::time::Duration;

    fn run(kind: SystemKind, size: usize, n_reqs: usize) -> (u64, u64) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 5);
            let app = build_lb(&cluster, 3, 3).await;
            cluster.reset_stats();
            let payload = Bytes::from(vec![0xABu8; size]);
            for i in 0..n_reqs {
                app.request(i, &payload).await.unwrap();
            }
            (
                app.lb_node.mem.traffic_bytes(),
                app.workers[0].mem.traffic_bytes(),
            )
        })
    }

    #[test]
    fn lb_memory_pressure_only_under_pass_by_value() {
        let (erpc_lb, erpc_w) = run(SystemKind::Erpc, 32 * 1024, 9);
        let (net_lb, net_w) = run(SystemKind::DmNet, 32 * 1024, 9);
        // eRPC LB: rx + tx DMA of 32 KiB per request.
        assert!(erpc_lb >= 9 * 2 * 32 * 1024, "erpc lb traffic {erpc_lb}");
        // DmRPC LB: only refs.
        assert!(net_lb < 9 * 1024, "dm lb traffic {net_lb}");
        // Workers touch the data in both systems.
        assert!(erpc_w > 0 && net_w > 0);
    }

    #[test]
    fn round_robin_spreads_work() {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 5);
            let app = build_lb(&cluster, 1, 3).await;
            let payload = Bytes::from(vec![1u8; 8192]);
            for i in 0..6 {
                app.request(i, &payload).await.unwrap();
            }
            for w in &app.workers {
                assert!(
                    w.mem.traffic_bytes() > 0,
                    "every worker should have served requests"
                );
            }
        });
    }

    #[test]
    fn concurrent_generators_all_complete() {
        let sim = Sim::new();
        let n = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 2, ClusterConfig::default(), 5);
            let app = Rc::new(build_lb(&cluster, 3, 3).await);
            let done = Rc::new(Cell::new(0u32));
            let mut handles = Vec::new();
            for g in 0..3 {
                let app = app.clone();
                let done = done.clone();
                handles.push(simcore::spawn(async move {
                    let payload = Bytes::from(vec![g as u8; 16384]);
                    for _ in 0..5 {
                        app.request(g, &payload).await.unwrap();
                        done.set(done.get() + 1);
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            simcore::sleep(Duration::from_micros(10)).await;
            done.get()
        });
        assert_eq!(n, 15);
    }
}
