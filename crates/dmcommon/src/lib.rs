//! # dmcommon — types shared by both disaggregated-memory backends
//!
//! The paper's two DM implementations (network-attached in [`dmnet`],
//! CXL G-FAM in [`dmcxl`]) expose one API surface (paper Table II):
//! `ralloc`/`rfree`/`create_ref`/`map_ref`, plus `rread`/`rwrite` for the
//! network backend and `load`/`store` semantics for CXL. This crate holds
//! the vocabulary types: DM virtual addresses, the `Ref` token that travels
//! inside RPC messages, page-size constants, copy-mode (the COW-vs-eager
//! ablation switch), and the error type.
//!
//! [`dmnet`]: ../dmnet/index.html
//! [`dmcxl`]: ../dmcxl/index.html

#![warn(missing_docs)]

pub mod va_tree;

use std::fmt;

use bytes::Bytes;

/// Page size used by every DM backend (paper §V-A: "the page size is
/// changeable, 4 KB in our case").
pub const PAGE_SIZE: usize = 4096;

/// Number of pages needed to hold `len` bytes (at least 1 for len 0 is NOT
/// assumed; zero-length regions occupy zero pages).
pub fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE as u64)
}

/// Identifies one DM server in the pool (network backend) or the G-FAM
/// device (CXL backend uses id 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DmServerId(pub u8);

/// Global process id assigned by the DM pool (paper §V-A: "each process has
/// a unique global PID across all compute servers").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalPid(pub u32);

/// A DM virtual address: `(server, global pid, per-process remote VA)`.
///
/// The paper calls the `(pid, va)` pair the *DM virtual address*; we carry
/// the owning server id alongside so the client library can route requests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RemoteAddr {
    /// DM server that owns the region.
    pub server: DmServerId,
    /// Global PID of the owning process.
    pub pid: GlobalPid,
    /// Per-process remote virtual address (byte-granular).
    pub va: u64,
}

impl RemoteAddr {
    /// Serialized size in bytes.
    pub const WIRE_BYTES: usize = 13;

    /// Encode to the fixed wire representation.
    pub fn encode(&self) -> [u8; Self::WIRE_BYTES] {
        let mut b = [0u8; Self::WIRE_BYTES];
        b[0] = self.server.0;
        b[1..5].copy_from_slice(&self.pid.0.to_le_bytes());
        b[5..13].copy_from_slice(&self.va.to_le_bytes());
        b
    }

    /// Decode from the wire representation.
    pub fn decode(b: &[u8]) -> Result<RemoteAddr, DmError> {
        if b.len() < Self::WIRE_BYTES {
            return Err(DmError::Malformed);
        }
        Ok(RemoteAddr {
            server: DmServerId(b[0]),
            pid: GlobalPid(u32::from_le_bytes(b[1..5].try_into().expect("len checked"))),
            va: u64::from_le_bytes(b[5..13].try_into().expect("len checked")),
        })
    }

    /// Byte offset added to the VA.
    pub fn offset(&self, delta: u64) -> RemoteAddr {
        RemoteAddr {
            va: self.va + delta,
            ..*self
        }
    }
}

impl fmt::Display for RemoteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dm{}:p{}:{:#x}", self.server.0, self.pid.0, self.va)
    }
}

/// The pass-by-reference token that travels in RPC messages instead of the
/// data (paper §IV-B: "The Ref object is small (several bytes), and is
/// transferred along the RPC chain on behalf of the large data").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ref {
    /// Network-backend reference: an opaque key into the owning DM server's
    /// ref map (paper §V-A1 `create_ref`), plus the region length.
    Net {
        /// The DM server holding the shared pages.
        server: DmServerId,
        /// Key into the server's `Ref` map.
        key: u64,
        /// Region length in bytes.
        len: u64,
    },
    /// CXL-backend reference: the shared CXL physical page numbers (paper
    /// §V-B3 `create_ref`: "returns all physical pages' addresses").
    Cxl {
        /// Region length in bytes.
        len: u64,
        /// CXL physical page numbers backing the region, in order.
        pages: Vec<u32>,
    },
}

impl Ref {
    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Ref::Net { len, .. } => *len,
            Ref::Cxl { len, .. } => *len,
        }
    }

    /// Whether the referenced region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the encoded token on the wire — what actually moves through
    /// the RPC chain in place of the data.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Ref::Net { .. } => 1 + 1 + 8 + 8,
            Ref::Cxl { pages, .. } => 1 + 8 + 4 + 4 * pages.len(),
        }
    }

    /// Encode the token.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.wire_bytes());
        match self {
            Ref::Net { server, key, len } => {
                out.push(1u8);
                out.push(server.0);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            Ref::Cxl { len, pages } => {
                out.push(2u8);
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
        Bytes::from(out)
    }

    /// Decode a token.
    pub fn decode(b: &[u8]) -> Result<Ref, DmError> {
        match b.first() {
            Some(1) => {
                if b.len() < 18 {
                    return Err(DmError::Malformed);
                }
                Ok(Ref::Net {
                    server: DmServerId(b[1]),
                    key: u64::from_le_bytes(b[2..10].try_into().expect("len checked")),
                    len: u64::from_le_bytes(b[10..18].try_into().expect("len checked")),
                })
            }
            Some(2) => {
                if b.len() < 13 {
                    return Err(DmError::Malformed);
                }
                let len = u64::from_le_bytes(b[1..9].try_into().expect("len checked"));
                let n = u32::from_le_bytes(b[9..13].try_into().expect("len checked")) as usize;
                if b.len() < 13 + 4 * n {
                    return Err(DmError::Malformed);
                }
                let pages = (0..n)
                    .map(|i| {
                        u32::from_le_bytes(
                            b[13 + 4 * i..17 + 4 * i].try_into().expect("len checked"),
                        )
                    })
                    .collect();
                Ok(Ref::Cxl { len, pages })
            }
            _ => Err(DmError::Malformed),
        }
    }
}

/// Copy policy for shared regions — the paper's central ablation (Fig. 7):
/// copy-on-write versus unconditional ("eager") copy at `create_ref` time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CopyMode {
    /// Delay copying until a write hits a shared page, and copy only that
    /// page (the DmRPC design).
    #[default]
    CopyOnWrite,
    /// Copy the whole region when the reference is created (the `-copy`
    /// baselines in Fig. 7).
    Eager,
}

/// Errors shared across DM backends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmError {
    /// The DM pool has no free pages (or VA space) left.
    OutOfMemory,
    /// The address does not name an allocated region of the calling process.
    InvalidAddress,
    /// The reference key is unknown (already released, or bogus).
    InvalidRef,
    /// Access beyond the end of the allocated region.
    OutOfBounds,
    /// A wire message failed to parse.
    Malformed,
    /// The underlying RPC transport failed.
    Transport,
    /// The server's admission queue is full (or it is shedding load);
    /// the request was rejected without being executed — retry later.
    Busy,
}

impl fmt::Display for DmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DmError::OutOfMemory => "out of disaggregated memory",
            DmError::InvalidAddress => "invalid DM address",
            DmError::InvalidRef => "invalid DM reference",
            DmError::OutOfBounds => "DM access out of bounds",
            DmError::Malformed => "malformed DM message",
            DmError::Transport => "DM transport failure",
            DmError::Busy => "DM server busy, retry later",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DmError {}

/// Result alias for DM operations.
pub type DmResult<T> = Result<T, DmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounding() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(10 * 4096), 10);
    }

    #[test]
    fn remote_addr_roundtrip() {
        let a = RemoteAddr {
            server: DmServerId(3),
            pid: GlobalPid(1234),
            va: 0xDEAD_0000,
        };
        let enc = a.encode();
        assert_eq!(RemoteAddr::decode(&enc).unwrap(), a);
        assert!(RemoteAddr::decode(&enc[..5]).is_err());
    }

    #[test]
    fn remote_addr_offset() {
        let a = RemoteAddr {
            server: DmServerId(0),
            pid: GlobalPid(1),
            va: 0x1000,
        };
        assert_eq!(a.offset(0x10).va, 0x1010);
        assert_eq!(a.offset(0x10).server, a.server);
    }

    #[test]
    fn net_ref_roundtrip_and_small() {
        let r = Ref::Net {
            server: DmServerId(1),
            key: 42,
            len: 1 << 20,
        };
        let enc = r.encode();
        assert_eq!(enc.len(), r.wire_bytes());
        assert_eq!(enc.len(), 18, "a Net ref is a few bytes, not the data");
        assert_eq!(Ref::decode(&enc).unwrap(), r);
    }

    #[test]
    fn cxl_ref_roundtrip() {
        let r = Ref::Cxl {
            len: 3 * 4096,
            pages: vec![7, 8, 1000],
        };
        let enc = r.encode();
        assert_eq!(enc.len(), r.wire_bytes());
        assert_eq!(Ref::decode(&enc).unwrap(), r);
        // Still far smaller than the data it stands for.
        assert!(enc.len() < 3 * 4096 / 100);
    }

    #[test]
    fn ref_len_and_empty() {
        let r = Ref::Net {
            server: DmServerId(0),
            key: 1,
            len: 0,
        };
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Ref::decode(&[]).is_err());
        assert!(Ref::decode(&[9, 0, 0]).is_err());
        assert!(Ref::decode(&[1, 0]).is_err());
        // CXL ref claiming 5 pages but providing 1.
        let mut bad = vec![2u8];
        bad.extend_from_slice(&(4096u64 * 5).to_le_bytes());
        bad.extend_from_slice(&5u32.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        assert!(Ref::decode(&bad).is_err());
    }

    #[test]
    fn copy_mode_default_is_cow() {
        assert_eq!(CopyMode::default(), CopyMode::CopyOnWrite);
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            DmError::OutOfMemory.to_string(),
            "out of disaggregated memory"
        );
        assert_eq!(DmError::InvalidRef.to_string(), "invalid DM reference");
    }
}
