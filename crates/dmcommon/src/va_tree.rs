//! Per-process remote-VA range allocator.
//!
//! The paper (§V-A1): "For each process leveraging the DM, Page manager
//! maintains a VA allocation tree that records allocated VA ranges, similar
//! to the Linux vma tree." This is that tree: an ordered map of allocated
//! `[start, start+len)` ranges with first-fit allocation and containment
//! lookup.

use std::collections::BTreeMap;

use crate::{DmError, DmResult};

/// Lowest VA handed out (0 is reserved as a null-like value).
pub const VA_BASE: u64 = 0x1000;

/// First-fit VA range allocator over one process's remote address space.
#[derive(Debug, Default)]
pub struct VaTree {
    /// start -> len of allocated ranges (non-overlapping, page-aligned).
    ranges: BTreeMap<u64, u64>,
}

impl VaTree {
    /// Create an empty tree.
    pub fn new() -> VaTree {
        VaTree::default()
    }

    /// Allocate a page-aligned range of `len` bytes (rounded up to pages).
    /// Returns the starting VA.
    pub fn alloc(&mut self, len: u64, page_size: u64) -> DmResult<u64> {
        if len == 0 {
            return Err(DmError::InvalidAddress);
        }
        let need = len.div_ceil(page_size) * page_size;
        let mut candidate = VA_BASE;
        for (&start, &rlen) in &self.ranges {
            if candidate + need <= start {
                break;
            }
            candidate = candidate.max(start + rlen);
        }
        if candidate.checked_add(need).is_none() {
            return Err(DmError::OutOfMemory);
        }
        self.ranges.insert(candidate, need);
        Ok(candidate)
    }

    /// Free the range starting exactly at `start`; returns its length.
    pub fn free(&mut self, start: u64) -> DmResult<u64> {
        self.ranges.remove(&start).ok_or(DmError::InvalidAddress)
    }

    /// Find the allocated range containing `va`. Returns `(start, len)`.
    pub fn lookup(&self, va: u64) -> DmResult<(u64, u64)> {
        let (&start, &len) = self
            .ranges
            .range(..=va)
            .next_back()
            .ok_or(DmError::InvalidAddress)?;
        if va < start + len {
            Ok((start, len))
        } else {
            Err(DmError::InvalidAddress)
        }
    }

    /// Whether `[va, va+len)` lies entirely inside one allocated range.
    pub fn contains_range(&self, va: u64, len: u64) -> bool {
        match self.lookup(va) {
            Ok((start, rlen)) => va + len <= start + rlen,
            Err(_) => false,
        }
    }

    /// Number of allocated ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no ranges are allocated.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.ranges.values().sum()
    }

    /// Iterate allocated `(start, len)` ranges in address order (snapshot
    /// encoding for the durable tier).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &l)| (s, l))
    }

    /// Re-insert a range verbatim (crash-recovery restore path). The range
    /// must come from a prior [`VaTree::iter`] of a consistent tree; no
    /// overlap checking is performed.
    pub fn restore_range(&mut self, start: u64, len: u64) {
        self.ranges.insert(start, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: u64 = 4096;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut t = VaTree::new();
        let a = t.alloc(100, PS).unwrap();
        let b = t.alloc(5000, PS).unwrap();
        assert_eq!(a % PS, 0);
        assert_eq!(b % PS, 0);
        assert!(b >= a + PS, "ranges must not overlap");
        assert_eq!(t.allocated_bytes(), PS + 2 * PS);
    }

    #[test]
    fn freed_range_is_reused() {
        let mut t = VaTree::new();
        let a = t.alloc(PS, PS).unwrap();
        let _b = t.alloc(PS, PS).unwrap();
        t.free(a).unwrap();
        let c = t.alloc(PS, PS).unwrap();
        assert_eq!(c, a, "first-fit reuses the freed gap");
    }

    #[test]
    fn lookup_finds_containing_range() {
        let mut t = VaTree::new();
        let a = t.alloc(3 * PS, PS).unwrap();
        assert_eq!(t.lookup(a).unwrap(), (a, 3 * PS));
        assert_eq!(t.lookup(a + 2 * PS + 17).unwrap(), (a, 3 * PS));
        assert!(t.lookup(a + 3 * PS).is_err());
        assert!(t.lookup(0).is_err());
    }

    #[test]
    fn contains_range_checks_bounds() {
        let mut t = VaTree::new();
        let a = t.alloc(2 * PS, PS).unwrap();
        assert!(t.contains_range(a, 2 * PS));
        assert!(t.contains_range(a + 100, PS));
        assert!(!t.contains_range(a + PS, 2 * PS));
    }

    #[test]
    fn free_unknown_start_errors() {
        let mut t = VaTree::new();
        let a = t.alloc(PS, PS).unwrap();
        assert!(t.free(a + PS).is_err());
        assert!(t.free(a).is_ok());
        assert!(t.free(a).is_err(), "double free rejected");
    }

    #[test]
    fn zero_len_alloc_rejected() {
        let mut t = VaTree::new();
        assert!(t.alloc(0, PS).is_err());
    }

    #[test]
    fn iter_restore_roundtrip() {
        let mut t = VaTree::new();
        let a = t.alloc(PS, PS).unwrap();
        let b = t.alloc(3 * PS, PS).unwrap();
        let mut u = VaTree::new();
        for (s, l) in t.iter() {
            u.restore_range(s, l);
        }
        assert_eq!(u.lookup(a).unwrap(), t.lookup(a).unwrap());
        assert_eq!(u.lookup(b).unwrap(), t.lookup(b).unwrap());
        assert_eq!(u.allocated_bytes(), t.allocated_bytes());
        // First-fit behaves identically after restore.
        assert_eq!(u.alloc(PS, PS).unwrap(), t.alloc(PS, PS).unwrap());
    }

    #[test]
    fn gap_filling_first_fit() {
        let mut t = VaTree::new();
        let a = t.alloc(PS, PS).unwrap();
        let b = t.alloc(4 * PS, PS).unwrap();
        let c = t.alloc(PS, PS).unwrap();
        t.free(b).unwrap();
        // A 2-page request fits in the 4-page hole before c.
        let d = t.alloc(2 * PS, PS).unwrap();
        assert_eq!(d, b);
        // Another 2-page request fits in the remainder of the hole.
        let e = t.alloc(2 * PS, PS).unwrap();
        assert_eq!(e, b + 2 * PS);
        assert!(e + 2 * PS <= c);
        let _ = a;
    }
}
