//! Property tests: wire codecs round-trip for all inputs, and the VA tree
//! maintains allocation discipline under arbitrary interleavings.

use dmcommon::va_tree::VaTree;
use dmcommon::{DmServerId, GlobalPid, Ref, RemoteAddr};
use proptest::prelude::*;

proptest! {
    #[test]
    fn remote_addr_roundtrips(server in any::<u8>(), pid in any::<u32>(), va in any::<u64>()) {
        let a = RemoteAddr {
            server: DmServerId(server),
            pid: GlobalPid(pid),
            va,
        };
        prop_assert_eq!(RemoteAddr::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn net_ref_roundtrips(server in any::<u8>(), key in any::<u64>(), len in any::<u64>()) {
        let r = Ref::Net {
            server: DmServerId(server),
            key,
            len,
        };
        let enc = r.encode();
        prop_assert_eq!(enc.len(), r.wire_bytes());
        prop_assert_eq!(Ref::decode(&enc).unwrap(), r);
    }

    #[test]
    fn cxl_ref_roundtrips(len in any::<u64>(), pages in proptest::collection::vec(any::<u32>(), 0..300)) {
        let r = Ref::Cxl { len, pages };
        let enc = r.encode();
        prop_assert_eq!(enc.len(), r.wire_bytes());
        prop_assert_eq!(Ref::decode(&enc).unwrap(), r);
    }

    /// Decoding arbitrary bytes never panics, and any successful decode
    /// re-encodes to a prefix-compatible token.
    #[test]
    fn ref_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(r) = Ref::decode(&bytes) {
            let enc = r.encode();
            prop_assert_eq!(&bytes[..enc.len()], &enc[..]);
        }
    }

    /// VA tree: allocations are page-aligned, disjoint, and fully reusable.
    #[test]
    fn va_tree_discipline(ops in proptest::collection::vec((1u64..1_000_000, any::<bool>()), 1..60)) {
        const PS: u64 = 4096;
        let mut t = VaTree::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (size, do_free) in ops {
            let va = t.alloc(size, PS).unwrap();
            let len = size.div_ceil(PS) * PS;
            prop_assert_eq!(va % PS, 0);
            for &(o, ol) in &live {
                prop_assert!(va + len <= o || o + ol <= va, "overlap");
            }
            prop_assert_eq!(t.lookup(va).unwrap(), (va, len));
            prop_assert_eq!(t.lookup(va + len - 1).unwrap(), (va, len));
            live.push((va, len));
            if do_free && !live.is_empty() {
                let (o, _) = live.swap_remove(va as usize % live.len());
                t.free(o).unwrap();
                prop_assert!(t.lookup(o).is_err() || t.lookup(o).unwrap().0 != o);
            }
        }
        let total: u64 = live.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(t.allocated_bytes(), total);
        for (o, _) in live {
            t.free(o).unwrap();
        }
        prop_assert!(t.is_empty());
    }
}
