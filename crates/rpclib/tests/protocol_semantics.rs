//! Protocol-semantics tests: at-most-once execution under retransmission,
//! response-cache behavior, shutdown semantics, and pathological loss.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use rpclib::{RpcBuilder, RpcConfig, RpcError};
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig, NodeId};

fn rig() -> (Sim, Network, NodeId, NodeId) {
    let sim = Sim::new();
    let net = Network::new(FabricConfig::default(), 77);
    let a = net.add_node("a", NicConfig::default());
    let b = net.add_node("b", NicConfig::default());
    (sim, net, a, b)
}

/// A handler with a side effect must run at most once per request even when
/// the client retransmits aggressively (the response cache answers dups).
#[test]
fn handler_runs_at_most_once_under_retransmission() {
    let (sim, net, a, b) = rig();
    net.set_loss_probability(0.15);
    let net2 = net.clone();
    let (executions, completed) = sim.block_on(async move {
        let counter = Rc::new(Cell::new(0u32));
        let server = RpcBuilder::new(&net2, b, 10).build();
        let c2 = counter.clone();
        server.register(1, move |ctx| {
            let c = c2.clone();
            async move {
                c.set(c.get() + 1);
                // Slow handler widens the window for duplicate arrivals.
                simcore::sleep(Duration::from_micros(50)).await;
                ctx.payload
            }
        });
        let client = RpcBuilder::new(&net2, a, 10)
            .config(RpcConfig {
                rto: Duration::from_micros(30), // aggressive on purpose
                rto_per_packet: Duration::from_micros(5),
                max_retries: 50,
                ..Default::default()
            })
            .build();
        let mut completed = 0u32;
        for i in 0..40u32 {
            let r = client
                .call(server.addr(), 1, Bytes::from(i.to_le_bytes().to_vec()))
                .await;
            if let Ok(resp) = r {
                assert_eq!(u32::from_le_bytes(resp[..4].try_into().unwrap()), i);
                completed += 1;
            }
        }
        (counter.get(), completed)
    });
    assert!(completed >= 35, "most calls complete: {completed}");
    assert_eq!(
        executions, completed,
        "every completed call executed exactly once"
    );
}

/// Forced packet duplication on both directions of the link: the response
/// cache must answer the duplicate requests, so handler side effects happen
/// exactly once per completed call even though the wire carries each packet
/// (and each response) several times.
#[test]
fn handler_runs_at_most_once_under_forced_duplication() {
    let (sim, net, a, b) = rig();
    // Heavy duplication plus mild reorder so duplicates do not arrive
    // back-to-back (back-to-back dups are the easy case).
    net.set_link_duplicate(a, b, 0.8);
    net.set_link_duplicate(b, a, 0.8);
    net.set_link_reorder(a, b, 0.4, Duration::from_micros(40));
    net.set_link_reorder(b, a, 0.4, Duration::from_micros(40));
    let net2 = net.clone();
    let (executions, completed) = sim.block_on(async move {
        let counter = Rc::new(Cell::new(0u32));
        let server = RpcBuilder::new(&net2, b, 10).build();
        let c2 = counter.clone();
        server.register(1, move |ctx| {
            let c = c2.clone();
            async move {
                c.set(c.get() + 1);
                simcore::sleep(Duration::from_micros(30)).await;
                ctx.payload
            }
        });
        let client = RpcBuilder::new(&net2, a, 10).build();
        let mut completed = 0u32;
        for i in 0..50u32 {
            let r = client
                .call(server.addr(), 1, Bytes::from(i.to_le_bytes().to_vec()))
                .await;
            if let Ok(resp) = r {
                assert_eq!(u32::from_le_bytes(resp[..4].try_into().unwrap()), i);
                completed += 1;
            }
        }
        (counter.get(), completed)
    });
    assert_eq!(completed, 50, "duplication alone must not lose calls");
    assert!(
        net.duplicated() > 0,
        "fault plane never duplicated a packet"
    );
    assert_eq!(
        executions, completed,
        "duplicated requests re-executed the handler"
    );
}

/// Responses larger than one packet survive loss of arbitrary fragments.
#[test]
fn multi_packet_response_under_loss() {
    let (sim, net, a, b) = rig();
    net.set_loss_probability(0.08);
    let net2 = net.clone();
    sim.block_on(async move {
        let server = RpcBuilder::new(&net2, b, 10).build();
        server.register(1, |_| async {
            Bytes::from((0..50_000u32).map(|i| (i % 247) as u8).collect::<Vec<_>>())
        });
        let client = RpcBuilder::new(&net2, a, 10)
            .config(RpcConfig {
                rto: Duration::from_micros(200),
                rto_per_packet: Duration::from_micros(20),
                max_retries: 60,
                ..Default::default()
            })
            .build();
        for _ in 0..15 {
            let resp = client.call(server.addr(), 1, Bytes::new()).await.unwrap();
            assert_eq!(resp.len(), 50_000);
            assert!(resp.iter().enumerate().all(|(i, &v)| v == (i % 247) as u8));
        }
    });
}

/// After shutdown, a server silently ignores requests instead of panicking,
/// and the caller times out cleanly.
#[test]
fn shutdown_server_times_out_cleanly() {
    let (sim, net, a, b) = rig();
    sim.block_on(async move {
        let server = RpcBuilder::new(&net, b, 10).build();
        server.register(1, |ctx| async move { ctx.payload });
        let client = RpcBuilder::new(&net, a, 10)
            .config(RpcConfig {
                rto: Duration::from_micros(20),
                max_retries: 2,
                ..Default::default()
            })
            .build();
        // Works before shutdown.
        assert!(client
            .call(server.addr(), 1, Bytes::from_static(b"x"))
            .await
            .is_ok());
        server.shutdown();
        let r = client
            .call(server.addr(), 1, Bytes::from_static(b"y"))
            .await;
        assert_eq!(r, Err(RpcError::Timeout { attempts: 3 }));
    });
}

/// Interleaved calls from many clients to one server keep request/response
/// pairing intact (no cross-talk between req_nums of different peers).
#[test]
fn many_clients_no_response_crosstalk() {
    let sim = Sim::new();
    let net = Network::new(FabricConfig::default(), 5);
    let server_node = net.add_node("srv", NicConfig::default());
    let client_nodes: Vec<NodeId> = (0..6)
        .map(|i| net.add_node(format!("c{i}"), NicConfig::default()))
        .collect();
    sim.block_on(async move {
        let server = RpcBuilder::new(&net, server_node, 10).build();
        server.register(1, |ctx| async move {
            // Echo with a delay inversely related to payload so responses
            // complete out of request order.
            let d = 50u64.saturating_sub(ctx.payload[0] as u64);
            simcore::sleep(Duration::from_micros(d)).await;
            ctx.payload
        });
        let mut handles = Vec::new();
        for (ci, &node) in client_nodes.iter().enumerate() {
            let net = net.clone();
            let dst = server.addr();
            handles.push(simcore::spawn(async move {
                let client = RpcBuilder::new(&net, node, 10).build();
                for i in 0..20u8 {
                    let tag = (ci as u8) * 40 + i;
                    let resp = client
                        .call(dst, 1, Bytes::from(vec![tag, 0xAB]))
                        .await
                        .unwrap();
                    assert_eq!(&resp[..], &[tag, 0xAB], "cross-talk detected");
                }
            }));
        }
        for h in handles {
            h.await;
        }
    });
}

/// Per-peer flow control bounds concurrent handler executions and keeps
/// queueing delay bounded under heavy fan-in.
#[test]
fn session_credits_bound_inflight() {
    let (sim, net, a, b) = rig();
    let (peak, all_done) = sim.block_on(async move {
        let active = Rc::new(Cell::new((0u32, 0u32))); // (cur, peak)
        let server = RpcBuilder::new(&net, b, 10).build();
        let a2 = active.clone();
        server.register(1, move |ctx| {
            let active = a2.clone();
            async move {
                let (cur, peak) = active.get();
                active.set((cur + 1, peak.max(cur + 1)));
                simcore::sleep(Duration::from_micros(20)).await;
                let (cur, peak) = active.get();
                active.set((cur - 1, peak));
                ctx.payload
            }
        });
        let client = RpcBuilder::new(&net, a, 10)
            .config(RpcConfig {
                max_inflight_per_peer: Some(4),
                ..Default::default()
            })
            .build();
        let mut handles = Vec::new();
        for _ in 0..40 {
            let client = client.clone();
            let dst = server.addr();
            handles.push(simcore::spawn(async move {
                client.call(dst, 1, Bytes::from_static(b"x")).await.is_ok()
            }));
        }
        let mut ok = true;
        for h in handles {
            ok &= h.await;
        }
        (active.get().1, ok)
    });
    assert!(all_done);
    assert!(peak <= 4, "credits exceeded: peak {peak}");
}

/// Stats counters reflect what actually happened.
#[test]
fn stats_counters_consistent() {
    let (sim, net, a, b) = rig();
    sim.block_on(async move {
        let server = RpcBuilder::new(&net, b, 10).build();
        server.register(1, |ctx| async move { ctx.payload });
        let client = RpcBuilder::new(&net, a, 10).build();
        for _ in 0..25 {
            client
                .call(server.addr(), 1, Bytes::from_static(b"q"))
                .await
                .unwrap();
        }
        assert_eq!(client.stats().calls_completed.get(), 25);
        assert_eq!(client.stats().timeouts.get(), 0);
        assert_eq!(server.stats().requests_handled.get(), 25);
        // Lossless fabric: no retransmissions.
        assert_eq!(client.stats().retransmits.get(), 0);
    });
}
