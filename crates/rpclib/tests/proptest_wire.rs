//! Property tests for the RPC wire layer: fragmentation/reassembly is the
//! identity for every payload, under any delivery order, with duplicates —
//! and header/trace-extension decoding is total over hostile input.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rpclib::wire::{
    decode_trace_ext, encode_trace_ext, fragment, Header, Kind, Reassembly, TraceExtError,
    TRACE_EXT_BYTES,
};
use telemetry::TraceCtx;

proptest! {
    #[test]
    fn fragment_reassemble_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..60_000),
        mtu in 1usize..8192,
        req_num in any::<u64>(),
        req_type in any::<u8>(),
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let payload = Bytes::from(payload);
        let pkts = fragment(Kind::Request, req_type, req_num, &payload, mtu, None);
        prop_assert_eq!(pkts.len(), payload.len().div_ceil(mtu).max(1));

        // Parse and shuffle deterministically.
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).expect("own packets decode"))
            .collect();
        let mut rng = order_seed;
        for i in (1..parsed.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            parsed.swap(i, (rng >> 33) as usize % (i + 1));
        }
        // Inject duplicates.
        let dups: Vec<(Header, Bytes)> = parsed
            .iter()
            .enumerate()
            .filter(|(i, _)| dup_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, p)| p.clone())
            .collect();

        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1).chain(dups) {
            r.offer(&h, f);
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(r.assemble(), payload);
    }

    /// Several senders' fragment streams interleaved on one wire — shuffled
    /// and partially duplicated — reassemble independently: each message's
    /// `Reassembly` recovers exactly its own payload, and fragments from the
    /// other streams never complete or corrupt it.
    #[test]
    fn multi_sender_interleaved_streams_reassemble(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..8_000), 2..5),
        mtu in 1usize..2048,
        req_type in any::<u8>(),
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 0..96),
    ) {
        // One message per sender, distinguished by req_num.
        let payloads: Vec<Bytes> = payloads.into_iter().map(Bytes::from).collect();
        let mut wire: Vec<(Header, Bytes)> = Vec::new();
        for (sender, payload) in payloads.iter().enumerate() {
            for p in fragment(Kind::Request, req_type, sender as u64, payload, mtu, None) {
                wire.push(Header::decode_split(&p.head, &p.body).expect("own packets decode"));
            }
        }

        // Shuffle the combined stream deterministically, then duplicate a
        // prefix-masked subset.
        let mut rng = order_seed;
        for i in (1..wire.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            wire.swap(i, (rng >> 33) as usize % (i + 1));
        }
        let dups: Vec<(Header, Bytes)> = wire
            .iter()
            .enumerate()
            .filter(|(i, _)| dup_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, p)| p.clone())
            .collect();

        // Demultiplex by req_num, as the endpoint does.
        let mut streams: Vec<Option<Reassembly>> =
            (0..payloads.len()).map(|_| None).collect();
        for (h, f) in wire.into_iter().chain(dups) {
            let slot = &mut streams[h.req_num as usize];
            match slot {
                Some(r) => { r.offer(&h, f); }
                None => *slot = Some(Reassembly::new(&h, f)),
            }
        }
        for (sender, (r, payload)) in streams.into_iter().zip(&payloads).enumerate() {
            let r = r.expect("every stream saw at least one fragment");
            prop_assert!(r.is_complete(), "sender {} incomplete", sender);
            prop_assert_eq!(r.assemble(), payload.clone());
        }
    }

    /// Header decode is total: arbitrary bytes never panic, and valid
    /// headers survive an encode/decode round trip.
    #[test]
    fn header_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Header::decode(&Bytes::from(bytes));
    }

    #[test]
    fn header_roundtrip(
        req_num in any::<u64>(),
        req_type in any::<u8>(),
        num_pkts in 1u16..u16::MAX,
        msg_len in any::<u32>(),
        traced in any::<bool>(),
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        frag in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt_idx = num_pkts - 1;
        let h = Header {
            kind: Kind::Response,
            req_type,
            req_num,
            pkt_idx,
            num_pkts,
            msg_len,
            trace: traced.then_some(TraceCtx { trace_id, span_id }),
        };
        let enc = h.encode(&frag);
        let (h2, f2) = Header::decode(&enc).expect("valid header decodes");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&f2[..], &frag[..]);
    }

    /// Trace-extension decode is total: arbitrary bytes yield `Ok` or a
    /// typed error, never a panic.
    #[test]
    fn trace_ext_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_trace_ext(&bytes);
    }

    /// Every strict prefix of a valid extension is `Truncated` — a hostile
    /// sender cannot make us read past the buffer.
    #[test]
    fn trace_ext_truncation_is_typed(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        cut in 0usize..TRACE_EXT_BYTES,
    ) {
        let mut b = BytesMut::new();
        encode_trace_ext(TraceCtx { trace_id, span_id }, &mut b);
        prop_assert_eq!(b.len(), TRACE_EXT_BYTES);
        match decode_trace_ext(&b[..cut]) {
            Err(TraceExtError::Truncated) => {}
            // A cut after a complete field set but before the end cannot
            // happen for the 2-field encoding; anything else is a bug.
            other => prop_assert!(false, "prefix of {cut} bytes gave {other:?}"),
        }
    }

    /// An inflated field count is rejected up front (`TooManyFields`), no
    /// matter what bytes follow.
    #[test]
    fn trace_ext_oversized_is_typed(
        n in 5u8..=u8::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut b = vec![n];
        b.extend_from_slice(&tail);
        prop_assert_eq!(decode_trace_ext(&b), Err(TraceExtError::TooManyFields));
    }

    /// A repeated field id is rejected as `DuplicateField`.
    #[test]
    fn trace_ext_duplicate_is_typed(
        id in 1u8..=2,
        v1 in any::<u64>(),
        v2 in any::<u64>(),
    ) {
        let mut b = vec![2u8];
        b.push(id);
        b.extend_from_slice(&v1.to_le_bytes());
        b.push(id);
        b.extend_from_slice(&v2.to_le_bytes());
        prop_assert_eq!(decode_trace_ext(&b), Err(TraceExtError::DuplicateField));
    }

    /// Unknown field ids and missing required fields yield their typed
    /// errors.
    #[test]
    fn trace_ext_unknown_and_missing_are_typed(
        bad_id in 3u8..=u8::MAX,
        v in any::<u64>(),
    ) {
        let mut b = vec![1u8, bad_id];
        b.extend_from_slice(&v.to_le_bytes());
        prop_assert_eq!(decode_trace_ext(&b), Err(TraceExtError::UnknownField));

        let mut only_trace = vec![1u8, 1u8];
        only_trace.extend_from_slice(&v.to_le_bytes());
        prop_assert_eq!(decode_trace_ext(&only_trace), Err(TraceExtError::MissingField));
    }

    /// A corrupted traced header never panics the full decode path, and a
    /// clean one round-trips through the zero-copy split decoder.
    #[test]
    fn traced_header_decode_total(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        flip_at in 0usize..39,
        flip_bits in 1u8..=u8::MAX,
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let ctx = TraceCtx { trace_id, span_id };
        let pkts = fragment(Kind::Request, 7, 99, &Bytes::from(body.clone()), 4096, Some(ctx));
        prop_assert_eq!(pkts.len(), 1);
        let (h, f) = Header::decode_split(&pkts[0].head, &pkts[0].body)
            .expect("traced packet decodes");
        prop_assert_eq!(h.trace, Some(ctx));
        prop_assert_eq!(&f[..], &body[..]);

        // Flip bits anywhere in the 39-byte traced header: decode must
        // return (possibly garbage) Ok or None, never panic.
        let mut corrupt = pkts[0].head.to_vec();
        let at = flip_at % corrupt.len();
        corrupt[at] ^= flip_bits;
        let _ = Header::decode_split(&Bytes::from(corrupt), &pkts[0].body);
    }
}
