//! Property tests for the RPC wire layer: fragmentation/reassembly is the
//! identity for every payload, under any delivery order, with duplicates.

use bytes::Bytes;
use proptest::prelude::*;
use rpclib::wire::{fragment, Header, Kind, Reassembly};

proptest! {
    #[test]
    fn fragment_reassemble_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..60_000),
        mtu in 1usize..8192,
        req_num in any::<u64>(),
        req_type in any::<u8>(),
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let payload = Bytes::from(payload);
        let pkts = fragment(Kind::Request, req_type, req_num, &payload, mtu);
        prop_assert_eq!(pkts.len(), payload.len().div_ceil(mtu).max(1));

        // Parse and shuffle deterministically.
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).expect("own packets decode"))
            .collect();
        let mut rng = order_seed;
        for i in (1..parsed.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            parsed.swap(i, (rng >> 33) as usize % (i + 1));
        }
        // Inject duplicates.
        let dups: Vec<(Header, Bytes)> = parsed
            .iter()
            .enumerate()
            .filter(|(i, _)| dup_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, p)| p.clone())
            .collect();

        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1).chain(dups) {
            r.offer(&h, f);
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(r.assemble(), payload);
    }

    /// Several senders' fragment streams interleaved on one wire — shuffled
    /// and partially duplicated — reassemble independently: each message's
    /// `Reassembly` recovers exactly its own payload, and fragments from the
    /// other streams never complete or corrupt it.
    #[test]
    fn multi_sender_interleaved_streams_reassemble(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..8_000), 2..5),
        mtu in 1usize..2048,
        req_type in any::<u8>(),
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 0..96),
    ) {
        // One message per sender, distinguished by req_num.
        let payloads: Vec<Bytes> = payloads.into_iter().map(Bytes::from).collect();
        let mut wire: Vec<(Header, Bytes)> = Vec::new();
        for (sender, payload) in payloads.iter().enumerate() {
            for p in fragment(Kind::Request, req_type, sender as u64, payload, mtu) {
                wire.push(Header::decode_split(&p.head, &p.body).expect("own packets decode"));
            }
        }

        // Shuffle the combined stream deterministically, then duplicate a
        // prefix-masked subset.
        let mut rng = order_seed;
        for i in (1..wire.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            wire.swap(i, (rng >> 33) as usize % (i + 1));
        }
        let dups: Vec<(Header, Bytes)> = wire
            .iter()
            .enumerate()
            .filter(|(i, _)| dup_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, p)| p.clone())
            .collect();

        // Demultiplex by req_num, as the endpoint does.
        let mut streams: Vec<Option<Reassembly>> =
            (0..payloads.len()).map(|_| None).collect();
        for (h, f) in wire.into_iter().chain(dups) {
            let slot = &mut streams[h.req_num as usize];
            match slot {
                Some(r) => { r.offer(&h, f); }
                None => *slot = Some(Reassembly::new(&h, f)),
            }
        }
        for (sender, (r, payload)) in streams.into_iter().zip(&payloads).enumerate() {
            let r = r.expect("every stream saw at least one fragment");
            prop_assert!(r.is_complete(), "sender {} incomplete", sender);
            prop_assert_eq!(r.assemble(), payload.clone());
        }
    }

    /// Header decode is total: arbitrary bytes never panic, and valid
    /// headers survive an encode/decode round trip.
    #[test]
    fn header_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Header::decode(&Bytes::from(bytes));
    }

    #[test]
    fn header_roundtrip(
        req_num in any::<u64>(),
        req_type in any::<u8>(),
        num_pkts in 1u16..u16::MAX,
        msg_len in any::<u32>(),
        frag in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt_idx = num_pkts - 1;
        let h = Header {
            kind: Kind::Response,
            req_type,
            req_num,
            pkt_idx,
            num_pkts,
            msg_len,
        };
        let enc = h.encode(&frag);
        let (h2, f2) = Header::decode(&enc).expect("valid header decodes");
        prop_assert_eq!(h, h2);
        prop_assert_eq!(&f2[..], &frag[..]);
    }
}
