//! # rpclib — an eRPC-style datacenter RPC library on the simulated fabric
//!
//! Reimplements the structure of eRPC (Kalia et al., NSDI'19), the paper's
//! baseline and the control channel under DmRPC:
//!
//! * **datagram transport** — packets ride raw (simulated) UDP; reliability
//!   is client-driven: the client retransmits the whole request after an RTO
//!   until the response arrives (eRPC's "re-transmissions only at clients");
//! * **MTU fragmentation** — messages are split into MTU-sized fragments and
//!   reassembled on the receiver ([`wire`]);
//! * **asynchronous nested handlers** — a handler is an async function that
//!   may itself issue RPCs, which is how microservice chains are built;
//! * **response cache** — the server caches response packets per
//!   `(client, req_num)` until the client's ACK, so duplicate requests are
//!   answered without re-executing the handler (at-most-once execution for
//!   the common retransmission races);
//! * **multi-op framing** — batching layers pack several logical ops into
//!   one message body via the shared zero-copy framing in [`multiframe`].
//!
//! Cost model hooks: an optional [`CpuPool`] charges per-request dispatch
//! CPU, and an optional [`NodeMemory`] accounts DMA memory traffic for every
//! payload byte sent and received — this is what makes *pass-by-value*
//! forwarding visibly expensive on data-mover nodes (paper Fig. 6b).

#![warn(missing_docs)]

pub mod multiframe;
pub mod wire;

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use memsim::NodeMemory;
use simcore::sync::{oneshot, Semaphore};
use simcore::{Counter, CpuPool, Histogram, SimRng};
use simnet::{Addr, Network, NodeId, Payload};
use telemetry::SpanKind;
use wire::{fragment, Header, Kind, Packet, Reassembly};

/// Wrap a wire packet as a two-segment datagram payload (refcount bumps, no
/// byte copies).
fn packet_payload(p: &Packet) -> Payload {
    Payload::two(p.head.clone(), p.body.clone())
}

/// Errors surfaced to RPC callers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RpcError {
    /// No response after exhausting the retry limit or the retry budget.
    Timeout {
        /// Total transmissions performed (1 initial + retransmissions)
        /// before giving up — diagnosability for chaos reports.
        attempts: u32,
    },
}

impl RpcError {
    /// Whether this is a timeout (any attempt count).
    pub fn is_timeout(&self) -> bool {
        matches!(self, RpcError::Timeout { .. })
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { attempts } => {
                write!(f, "rpc timeout after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// RPC layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct RpcConfig {
    /// Payload bytes per packet (eRPC uses large MTUs on lossless fabrics).
    pub mtu: usize,
    /// Base retransmission timeout.
    pub rto: Duration,
    /// Additional RTO per request fragment, so multi-packet messages whose
    /// transmission time exceeds the base RTO are not spuriously
    /// retransmitted (effective RTO = `rto + rto_per_packet * num_pkts`).
    pub rto_per_packet: Duration,
    /// Retransmissions before giving up with [`RpcError::Timeout`].
    pub max_retries: u32,
    /// Ceiling for the exponentially backed-off RTO: each retransmission
    /// doubles the wait, capped at `max(rto_max, effective base RTO)`.
    /// Backoff only changes timing *after* the first RTO expiry, so
    /// fault-free runs are unaffected.
    pub rto_max: Duration,
    /// Random jitter applied to every retransmission wait: the wait is
    /// scaled by a factor uniform in `[1, 1 + retry_jitter)`. `0.0`
    /// (default) draws no random numbers, preserving existing schedules.
    /// Jitter desynchronizes retry storms after a partition heals.
    pub retry_jitter: f64,
    /// Cap on the total virtual time spent retrying one call, measured
    /// from the first transmission. When the budget expires the call fails
    /// with [`RpcError::Timeout`] even if `max_retries` is not exhausted.
    /// `None` (default) disables the budget.
    pub retry_budget: Option<Duration>,
    /// Per-request server-side dispatch CPU cost (charged on the node's
    /// [`CpuPool`] when one is attached).
    pub per_rpc_cpu: Duration,
    /// Additional dispatch CPU per KiB of request payload — the
    /// serialization/copy work a single-threaded service spends on
    /// pass-by-value arguments (~1 us for a 4 KiB argument by default).
    pub per_kb_cpu: Duration,
    /// Cached responses kept while awaiting client ACKs.
    pub resp_cache_capacity: usize,
    /// Optional flow control: cap on this endpoint's concurrent outstanding
    /// requests per destination (eRPC-style session credits, at request
    /// granularity). `None` = unlimited. Bounding this prevents incast
    /// collapse when many workers hammer one server.
    pub max_inflight_per_peer: Option<u64>,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            mtu: 4096,
            // eRPC's default RTO is in the milliseconds; retransmission is
            // for loss recovery, not load shedding — keep it well above any
            // queueing delay a loaded closed-loop run can produce.
            rto: Duration::from_millis(20),
            rto_per_packet: Duration::from_micros(20),
            max_retries: 10,
            rto_max: Duration::from_millis(160),
            retry_jitter: 0.0,
            retry_budget: None,
            per_rpc_cpu: Duration::from_nanos(400),
            per_kb_cpu: Duration::from_nanos(400),
            resp_cache_capacity: 128,
            max_inflight_per_peer: None,
        }
    }
}

/// Exponential backoff with optional multiplicative jitter — the policy
/// behind the retransmission watchdog, exposed so higher layers (e.g. the
/// DM client's `Busy`-retry loop) reuse the exact same wait schedule
/// instead of inventing a second one.
///
/// Each [`Backoff::next_wait`] returns the current interval (jittered by
/// `1 + U[0,1) × jitter` when a jitter fraction and RNG are supplied) and
/// then doubles the base, saturating at `cap`.
#[derive(Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
    jitter: f64,
    rng: Option<SimRng>,
}

impl Backoff {
    /// Deterministic (jitter-free) backoff starting at `base`, doubling
    /// up to `cap` (raised to `base` if smaller).
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            next: base,
            cap: cap.max(base),
            jitter: 0.0,
            rng: None,
        }
    }

    /// Backoff whose waits are multiplied by `1 + U[0,1) × jitter`. The
    /// RNG is only consulted when `jitter > 0`, so a zero-jitter policy
    /// draws nothing and stays schedule-identical to [`Backoff::new`].
    pub fn with_jitter(base: Duration, cap: Duration, jitter: f64, rng: SimRng) -> Backoff {
        Backoff {
            next: base,
            cap: cap.max(base),
            jitter,
            rng: Some(rng),
        }
    }

    /// The wait before the next retry attempt; advances the schedule.
    pub fn next_wait(&mut self) -> Duration {
        let wait = match (&self.rng, self.jitter > 0.0) {
            (Some(rng), true) => self.next.mul_f64(1.0 + rng.gen_f64() * self.jitter),
            _ => self.next,
        };
        self.next = (self.next * 2).min(self.cap);
        wait
    }
}

/// Context handed to request handlers.
pub struct CallCtx {
    /// The local RPC object (for nested calls).
    pub rpc: Rc<Rpc>,
    /// The caller's address.
    pub src: Addr,
    /// Request type the caller used.
    pub req_type: u8,
    /// Full request payload.
    pub payload: Bytes,
}

/// Boxed handler future.
pub type HandlerFuture = Pin<Box<dyn Future<Output = Bytes>>>;
/// A registered request handler.
pub type Handler = Rc<dyn Fn(CallCtx) -> HandlerFuture>;

struct Pending {
    reassembly: Option<Reassembly>,
    done: Option<oneshot::Sender<Result<Bytes, RpcError>>>,
}

/// Recently-completed request keys: a set for O(1) dedup plus FIFO order
/// for bounded eviction.
type CompletedLru = (HashSet<(Addr, u64)>, VecDeque<(Addr, u64)>);

struct RespCache {
    map: HashMap<(Addr, u64), Rc<Vec<Packet>>>,
    order: VecDeque<(Addr, u64)>,
    capacity: usize,
}

impl RespCache {
    fn insert(&mut self, key: (Addr, u64), pkts: Rc<Vec<Packet>>) {
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        if self.map.insert(key, pkts).is_none() {
            self.order.push_back(key);
        }
    }

    fn get(&self, key: &(Addr, u64)) -> Option<Rc<Vec<Packet>>> {
        self.map.get(key).cloned()
    }

    fn remove(&mut self, key: &(Addr, u64)) {
        self.map.remove(key);
        // `order` entry is lazily discarded on eviction.
    }
}

/// Counters exposed for tests and reports.
#[derive(Clone, Default)]
pub struct RpcStats {
    /// Completed outgoing calls.
    pub calls_completed: Counter,
    /// Request retransmissions performed.
    pub retransmits: Counter,
    /// Requests whose handler ran on this node.
    pub requests_handled: Counter,
    /// Calls that ended in timeout.
    pub timeouts: Counter,
}

/// One RPC endpoint: client and server in a single object (services issue
/// nested calls from inside handlers).
pub struct Rpc {
    net: Network,
    addr: Addr,
    config: RpcConfig,
    cpu: Option<CpuPool>,
    mem: Option<NodeMemory>,
    handlers: RefCell<HashMap<u8, Handler>>,
    next_req: Cell<u64>,
    pending: RefCell<HashMap<u64, Pending>>,
    inflight_reqs: RefCell<HashMap<(Addr, u64), Reassembly>>,
    executing: RefCell<HashSet<(Addr, u64)>>,
    completed: RefCell<CompletedLru>,
    resp_cache: RefCell<RespCache>,
    stats: RpcStats,
    handler_times: RefCell<HashMap<u8, Histogram>>,
    peer_credits: RefCell<HashMap<Addr, Semaphore>>,
    is_shutdown: Cell<bool>,
    /// Crash modeling: an offline endpoint neither receives nor transmits.
    offline: Cell<bool>,
    /// Private stream for retry jitter, seeded from the endpoint address so
    /// it never perturbs the fabric's RNG (and is only drawn from when
    /// `retry_jitter > 0`).
    retry_rng: SimRng,
}

/// Builder for [`Rpc`].
pub struct RpcBuilder {
    net: Network,
    node: NodeId,
    port: u16,
    config: RpcConfig,
    cpu: Option<CpuPool>,
    mem: Option<NodeMemory>,
}

impl RpcBuilder {
    /// Start building an RPC endpoint bound to `node:port`.
    pub fn new(net: &Network, node: NodeId, port: u16) -> RpcBuilder {
        RpcBuilder {
            net: net.clone(),
            node,
            port,
            config: RpcConfig::default(),
            cpu: None,
            mem: None,
        }
    }

    /// Override the configuration.
    pub fn config(mut self, config: RpcConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach a CPU pool charged per handled request.
    pub fn cpu(mut self, cpu: CpuPool) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Attach a node memory model: DMA traffic is accounted for every
    /// payload byte sent or received by this endpoint.
    pub fn mem(mut self, mem: NodeMemory) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Bind the endpoint and start the dispatch loop.
    ///
    /// Must be called from inside the simulation (it spawns a task).
    pub fn build(self) -> Rc<Rpc> {
        let endpoint = self.net.bind(self.node, self.port);
        let rpc = Rc::new(Rpc {
            net: self.net,
            addr: endpoint.addr(),
            config: self.config,
            cpu: self.cpu,
            mem: self.mem,
            handlers: RefCell::new(HashMap::new()),
            next_req: Cell::new(1),
            pending: RefCell::new(HashMap::new()),
            inflight_reqs: RefCell::new(HashMap::new()),
            executing: RefCell::new(HashSet::new()),
            completed: RefCell::new((HashSet::new(), VecDeque::new())),
            resp_cache: RefCell::new(RespCache {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: self.config.resp_cache_capacity,
            }),
            stats: RpcStats::default(),
            handler_times: RefCell::new(HashMap::new()),
            peer_credits: RefCell::new(HashMap::new()),
            is_shutdown: Cell::new(false),
            offline: Cell::new(false),
            retry_rng: SimRng::new(
                ((endpoint.addr().node.0 as u64) << 16) ^ endpoint.addr().port as u64,
            ),
        });
        let loop_rpc = rpc.clone();
        simcore::spawn(async move {
            let mut ep = endpoint;
            loop {
                let dgram = ep.recv().await;
                loop_rpc.handle_packet(dgram);
            }
        });
        rpc
    }
}

impl Rpc {
    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Stats counters.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// Per-`req_type` handler service-time histogram (ns), recorded from
    /// dispatch (post-CPU-queue) to response send. Powers per-tier latency
    /// breakdowns in the examples and benches.
    pub fn handler_time(&self, req_type: u8) -> Option<Histogram> {
        self.handler_times.borrow().get(&req_type).cloned()
    }

    /// Configuration in effect.
    pub fn config(&self) -> &RpcConfig {
        &self.config
    }

    /// Drop every registered handler and cached response. Handlers close
    /// over application state (which usually closes back over this `Rpc`),
    /// so explicit teardown is what breaks the `Rc` cycle when a simulated
    /// deployment is discarded.
    pub fn shutdown(&self) {
        self.is_shutdown.set(true);
        self.handlers.borrow_mut().clear();
        let mut cache = self.resp_cache.borrow_mut();
        cache.map.clear();
        cache.order.clear();
        self.inflight_reqs.borrow_mut().clear();
    }

    /// Crash modeling for chaos tests: while offline, this endpoint drops
    /// every incoming datagram and suppresses every outgoing one, exactly
    /// like a powered-off host whose peers see only silence. Local state
    /// (handlers, caches, dedup sets) is retained, so `set_offline(false)`
    /// models a fail-stop crash followed by a restart that recovers state.
    pub fn set_offline(&self, offline: bool) {
        self.offline.set(offline);
    }

    /// Whether this endpoint is currently offline.
    pub fn is_offline(&self) -> bool {
        self.offline.get()
    }

    /// All outgoing traffic funnels through here so crash modeling can
    /// suppress it in one place.
    fn transmit(&self, dst: Addr, payload: Payload) {
        if self.offline.get() {
            return;
        }
        self.net.send_datagram(self.addr, dst, payload);
    }

    /// Register the handler for `req_type`, replacing any previous one.
    pub fn register<F, Fut>(&self, req_type: u8, f: F)
    where
        F: Fn(CallCtx) -> Fut + 'static,
        Fut: Future<Output = Bytes> + 'static,
    {
        self.handlers
            .borrow_mut()
            .insert(req_type, Rc::new(move |ctx| Box::pin(f(ctx))));
    }

    /// Issue a request and await the response.
    pub async fn call(
        self: &Rc<Self>,
        dst: Addr,
        req_type: u8,
        payload: Bytes,
    ) -> Result<Bytes, RpcError> {
        // Optional per-peer flow control (session credits).
        let _credit = match self.config.max_inflight_per_peer {
            Some(n) => {
                let sem = self
                    .peer_credits
                    .borrow_mut()
                    .entry(dst)
                    .or_insert_with(|| Semaphore::new(n))
                    .clone();
                Some(sem.acquire_one().await)
            }
            None => None,
        };
        let req_num = self.next_req.get();
        self.next_req.set(req_num + 1);
        // Traced calls carry their context in the header extension so the
        // server parents its handling span under this one; unsampled calls
        // stay byte-identical on the wire.
        let mut call_span = telemetry::span(SpanKind::ClientCall, "rpc.call", self.addr.node.0);
        if let Some(s) = call_span.as_mut() {
            s.attr("req_type", req_type as u64);
            s.attr("req_bytes", payload.len() as u64);
        }
        let trace = call_span.as_ref().map(|s| s.ctx());
        let pkts = Rc::new(fragment(
            Kind::Request,
            req_type,
            req_num,
            &payload,
            self.config.mtu,
            trace,
        ));
        if let Some(mem) = &self.mem {
            mem.account(payload.len() as u64); // tx DMA
        }
        let (done_tx, done_rx) = oneshot::channel();
        self.pending.borrow_mut().insert(
            req_num,
            Pending {
                reassembly: None,
                done: Some(done_tx),
            },
        );
        for p in pkts.iter() {
            self.transmit(dst, packet_payload(p));
        }

        // Client-driven retransmission watchdog: exponential backoff with
        // optional jitter, bounded by both a retry count and (optionally) a
        // total retry-time budget.
        let rpc = self.clone();
        let watch_pkts = pkts.clone();
        let watch_trace = trace;
        simcore::spawn(async move {
            let mut attempts: u32 = 1; // the initial transmission
            let base = rpc.config.rto + rpc.config.rto_per_packet * (watch_pkts.len() as u32);
            let cap = rpc.config.rto_max.max(base);
            // retry_rng clones share one stream, so the draw sequence is
            // identical to the pre-Backoff inline implementation.
            let mut backoff =
                Backoff::with_jitter(base, cap, rpc.config.retry_jitter, rpc.retry_rng.clone());
            let deadline = rpc.config.retry_budget.map(|b| simcore::now() + b);
            loop {
                simcore::sleep(backoff.next_wait()).await;
                if !rpc.pending.borrow().contains_key(&req_num) {
                    return; // completed
                }
                let budget_spent = deadline.is_some_and(|d| simcore::now() >= d);
                if attempts > rpc.config.max_retries || budget_spent {
                    if let Some(mut p) = rpc.pending.borrow_mut().remove(&req_num) {
                        if let Some(done) = p.done.take() {
                            let _ = done.send(Err(RpcError::Timeout { attempts }));
                        }
                    }
                    rpc.stats.timeouts.incr();
                    return;
                }
                attempts += 1;
                rpc.stats.retransmits.incr();
                if let Some(ctx) = watch_trace {
                    telemetry::event_with_parent(
                        SpanKind::Retry,
                        "rpc.retransmit",
                        rpc.addr.node.0,
                        ctx,
                        &[("attempt", attempts as u64)],
                    );
                }
                for p in watch_pkts.iter() {
                    rpc.transmit(dst, packet_payload(p));
                }
            }
        });

        let result = done_rx.await.expect("pending entry never dropped silently");
        if let Ok(resp) = &result {
            if let Some(mem) = &self.mem {
                mem.account(resp.len() as u64); // rx DMA
            }
            // ACK lets the server drop its cached response.
            let ack = Header {
                kind: Kind::Ack,
                req_type,
                req_num,
                pkt_idx: 0,
                num_pkts: 1,
                msg_len: 0,
                trace: None,
            }
            .encode(&[]);
            self.transmit(dst, ack.into());
            self.stats.calls_completed.incr();
        }
        result
    }

    fn mark_completed(&self, key: (Addr, u64)) {
        let mut c = self.completed.borrow_mut();
        if c.0.insert(key) {
            c.1.push_back(key);
            if c.1.len() > 4096 {
                if let Some(old) = c.1.pop_front() {
                    c.0.remove(&old);
                }
            }
        }
    }

    fn handle_packet(self: &Rc<Self>, dgram: simnet::Datagram) {
        if self.offline.get() {
            return; // crashed hosts hear nothing
        }
        let Some((hdr, frag)) = Header::decode_split(&dgram.payload.head, &dgram.payload.body)
        else {
            return;
        };
        match hdr.kind {
            Kind::Request => self.handle_request_pkt(dgram.src, hdr, frag),
            Kind::Response => self.handle_response_pkt(hdr, frag),
            Kind::Ack => {
                let key = (dgram.src, hdr.req_num);
                self.resp_cache.borrow_mut().remove(&key);
                self.mark_completed(key);
            }
        }
    }

    fn handle_request_pkt(self: &Rc<Self>, src: Addr, hdr: Header, frag: Bytes) {
        let key = (src, hdr.req_num);
        // Duplicate of a request we already answered: resend cached packets.
        if let Some(pkts) = self.resp_cache.borrow().get(&key) {
            for p in pkts.iter() {
                self.transmit(src, packet_payload(p));
            }
            return;
        }
        if self.executing.borrow().contains(&key) || self.completed.borrow().0.contains(&key) {
            return;
        }
        let complete = {
            let mut inflight = self.inflight_reqs.borrow_mut();
            match inflight.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if e.get_mut().offer(&hdr, frag) {
                        Some(e.remove().assemble())
                    } else {
                        None
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let r = Reassembly::new(&hdr, frag);
                    if r.is_complete() {
                        Some(r.assemble())
                    } else {
                        v.insert(r);
                        None
                    }
                }
            }
        };
        let Some(payload) = complete else { return };
        self.executing.borrow_mut().insert(key);
        if let Some(mem) = &self.mem {
            mem.account(payload.len() as u64); // rx DMA
        }
        let rpc = self.clone();
        simcore::spawn(async move {
            // Continue the caller's trace on this node: the handling span
            // parents everything the handler does (nested calls included).
            let mut srv_span = hdr.trace.and_then(|ctx| {
                telemetry::span_with_parent(
                    SpanKind::ServerHandle,
                    "rpc.handle",
                    rpc.addr.node.0,
                    ctx,
                )
            });
            if let Some(s) = srv_span.as_mut() {
                s.attr("req_type", hdr.req_type as u64);
                s.attr("req_bytes", payload.len() as u64);
            }
            if let Some(cpu) = &rpc.cpu {
                let ser = telemetry::span(SpanKind::Serialize, "rpc.dispatch_cpu", rpc.addr.node.0);
                let kib = (payload.len() as u64).div_ceil(1024) as u32;
                cpu.execute(rpc.config.per_rpc_cpu + rpc.config.per_kb_cpu * kib)
                    .await;
                drop(ser);
            }
            let handler = rpc.handlers.borrow().get(&hdr.req_type).cloned();
            let Some(handler) = handler else {
                if rpc.is_shutdown.get() {
                    // Late requests during teardown are silently dropped.
                    rpc.executing.borrow_mut().remove(&key);
                    return;
                }
                panic!("no handler for req_type {} at {}", hdr.req_type, rpc.addr);
            };
            let h_start = simcore::now();
            let resp = handler(CallCtx {
                rpc: rpc.clone(),
                src,
                req_type: hdr.req_type,
                payload,
            })
            .await;
            rpc.handler_times
                .borrow_mut()
                .entry(hdr.req_type)
                .or_default()
                .record((simcore::now() - h_start).as_nanos() as u64);
            rpc.stats.requests_handled.incr();
            if let Some(mem) = &rpc.mem {
                mem.account(resp.len() as u64); // tx DMA
            }
            let pkts = Rc::new(fragment(
                Kind::Response,
                hdr.req_type,
                hdr.req_num,
                &resp,
                rpc.config.mtu,
                None, // responses never carry the trace extension
            ));
            rpc.resp_cache.borrow_mut().insert(key, pkts.clone());
            rpc.executing.borrow_mut().remove(&key);
            for p in pkts.iter() {
                rpc.transmit(src, packet_payload(p));
            }
        });
    }

    fn handle_response_pkt(&self, hdr: Header, frag: Bytes) {
        let mut pending = self.pending.borrow_mut();
        let Some(p) = pending.get_mut(&hdr.req_num) else {
            return; // stale duplicate after completion
        };
        let complete = match &mut p.reassembly {
            Some(r) => r.offer(&hdr, frag),
            None => {
                let r = Reassembly::new(&hdr, frag);
                let c = r.is_complete();
                p.reassembly = Some(r);
                c
            }
        };
        if complete {
            let mut p = pending.remove(&hdr.req_num).expect("present");
            let body = p.reassembly.take().expect("reassembly set").assemble();
            if let Some(done) = p.done.take() {
                let _ = done.send(Ok(body));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::ModelParams;
    use simcore::Sim;
    use simnet::{FabricConfig, NicConfig};

    fn setup(n: usize) -> (Sim, Network, Vec<NodeId>) {
        let sim = Sim::new();
        let net = Network::new(FabricConfig::default(), 7);
        let nodes = (0..n)
            .map(|i| net.add_node(format!("n{i}"), NicConfig::default()))
            .collect();
        (sim, net, nodes)
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(b.next_wait(), Duration::from_millis(10));
        assert_eq!(b.next_wait(), Duration::from_millis(20));
        assert_eq!(b.next_wait(), Duration::from_millis(35));
        assert_eq!(b.next_wait(), Duration::from_millis(35), "saturates at cap");
        // A cap below base is raised to base.
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(1));
        assert_eq!(b.next_wait(), Duration::from_millis(10));
        assert_eq!(b.next_wait(), Duration::from_millis(10));
    }

    #[test]
    fn backoff_jitter_bounds_and_determinism() {
        let mk = || {
            Backoff::with_jitter(
                Duration::from_millis(10),
                Duration::from_millis(160),
                0.5,
                SimRng::new(7),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..6 {
            let (wa, wb) = (a.next_wait(), b.next_wait());
            assert_eq!(wa, wb, "same seed, same schedule (draw {i})");
            let base = Duration::from_millis(10 * (1 << i.min(4)));
            assert!(wa >= base && wa < base.mul_f64(1.5), "draw {i}: {wa:?}");
        }
        // Zero jitter never consults the RNG: the shared stream is
        // untouched after several waits.
        let rng = SimRng::new(3);
        let mut z = Backoff::with_jitter(
            Duration::from_millis(5),
            Duration::from_millis(20),
            0.0,
            rng.clone(),
        );
        assert_eq!(z.next_wait(), Duration::from_millis(5));
        assert_eq!(z.next_wait(), Duration::from_millis(10));
        assert_eq!(
            rng.next_u64(),
            SimRng::new(3).next_u64(),
            "no RNG draw at jitter=0"
        );
    }

    #[test]
    fn echo_roundtrip() {
        let (sim, net, nodes) = setup(2);
        let t = sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |ctx| async move { ctx.payload });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            let resp = client
                .call(server.addr(), 1, Bytes::from_static(b"ping"))
                .await
                .unwrap();
            assert_eq!(&resp[..], b"ping");
            simcore::now()
        });
        // Small RPC should complete in a few microseconds, like eRPC.
        assert!(t.nanos() < 5_000, "echo took {t}");
    }

    #[test]
    fn large_message_fragmentation() {
        let (sim, net, nodes) = setup(2);
        sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |ctx| async move {
                // Reverse the payload to prove the server saw all bytes.
                let mut v = ctx.payload.to_vec();
                v.reverse();
                Bytes::from(v)
            });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            let req: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            let mut expect = req.clone();
            expect.reverse();
            let resp = client
                .call(server.addr(), 1, Bytes::from(req))
                .await
                .unwrap();
            assert_eq!(&resp[..], &expect[..]);
        });
    }

    #[test]
    fn nested_calls_three_hops() {
        let (sim, net, nodes) = setup(3);
        sim.block_on(async move {
            let c_addr;
            {
                let c = RpcBuilder::new(&net, nodes[2], 10).build();
                c_addr = c.addr();
                c.register(1, |ctx| async move {
                    let mut v = ctx.payload.to_vec();
                    v.push(b'c');
                    Bytes::from(v)
                });
            }
            let b = RpcBuilder::new(&net, nodes[1], 10).build();
            let b_addr = b.addr();
            b.register(1, move |ctx| async move {
                let mut v = ctx.payload.to_vec();
                v.push(b'b');
                ctx.rpc.call(c_addr, 1, Bytes::from(v)).await.unwrap()
            });
            let a = RpcBuilder::new(&net, nodes[0], 10).build();
            let resp = a.call(b_addr, 1, Bytes::from_static(b"a")).await.unwrap();
            assert_eq!(&resp[..], b"abc");
        });
    }

    #[test]
    fn many_concurrent_calls() {
        let (sim, net, nodes) = setup(2);
        let counts = sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |ctx| async move {
                simcore::sleep(Duration::from_micros(1)).await;
                ctx.payload
            });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            let mut handles = Vec::new();
            for i in 0..100u32 {
                let client = client.clone();
                let dst = server.addr();
                handles.push(simcore::spawn(async move {
                    let resp = client
                        .call(dst, 1, Bytes::from(i.to_le_bytes().to_vec()))
                        .await
                        .unwrap();
                    u32::from_le_bytes(resp[..4].try_into().unwrap())
                }));
            }
            let mut got = Vec::new();
            for h in handles {
                got.push(h.await);
            }
            got
        });
        assert_eq!(counts, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn retransmission_recovers_from_loss() {
        let (sim, net, nodes) = setup(2);
        net.set_loss_probability(0.05);
        let net2 = net.clone();
        let stats = sim.block_on(async move {
            let server = RpcBuilder::new(&net2, nodes[1], 10).build();
            server.register(1, |ctx| async move { ctx.payload });
            let client = RpcBuilder::new(&net2, nodes[0], 10).build();
            for i in 0..200u32 {
                let payload = Bytes::from(vec![i as u8; 10_000]);
                let resp = client
                    .call(server.addr(), 1, payload.clone())
                    .await
                    .unwrap();
                assert_eq!(resp, payload, "call {i}");
            }
            client.stats().clone()
        });
        assert_eq!(stats.calls_completed.get(), 200);
        assert!(stats.retransmits.get() > 0, "loss must cause retransmits");
        assert!(net.dropped_loss() > 0);
    }

    #[test]
    fn timeout_on_unreachable_server() {
        let (sim, net, nodes) = setup(2);
        let r = sim.block_on(async move {
            let client = RpcBuilder::new(&net, nodes[0], 10)
                .config(RpcConfig {
                    rto: Duration::from_micros(10),
                    max_retries: 2,
                    ..Default::default()
                })
                .build();
            client
                .call(
                    Addr {
                        node: nodes[1],
                        port: 99,
                    },
                    1,
                    Bytes::from_static(b"x"),
                )
                .await
        });
        // max_retries = 2: the initial transmission plus two retransmissions.
        assert_eq!(r, Err(RpcError::Timeout { attempts: 3 }));
    }

    #[test]
    fn memory_traffic_accounted_on_both_sides() {
        let (sim, net, nodes) = setup(2);
        let params = ModelParams::new();
        let mem_c = NodeMemory::with_defaults("c", params.clone());
        let mem_s = NodeMemory::with_defaults("s", params);
        let (mc, ms) = (mem_c.clone(), mem_s.clone());
        sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).mem(ms).build();
            server.register(1, |_| async move { Bytes::from(vec![0u8; 100]) });
            let client = RpcBuilder::new(&net, nodes[0], 10).mem(mc).build();
            client
                .call(server.addr(), 1, Bytes::from(vec![0u8; 1000]))
                .await
                .unwrap();
        });
        // Client: 1000B tx + 100B rx; server: 1000B rx + 100B tx.
        assert_eq!(mem_c.traffic_bytes(), 1100);
        assert_eq!(mem_s.traffic_bytes(), 1100);
    }

    #[test]
    fn cpu_pool_bounds_server_throughput() {
        let (sim, net, nodes) = setup(2);
        let cpu = CpuPool::new(1);
        let cpu2 = cpu.clone();
        let elapsed = sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10)
                .config(RpcConfig {
                    per_rpc_cpu: Duration::from_micros(10),
                    ..Default::default()
                })
                .cpu(cpu2)
                .build();
            server.register(1, |ctx| async move { ctx.payload });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            let start = simcore::now();
            let mut handles = Vec::new();
            for _ in 0..10 {
                let client = client.clone();
                let dst = server.addr();
                handles.push(simcore::spawn(async move {
                    client.call(dst, 1, Bytes::from_static(b"x")).await.unwrap();
                }));
            }
            for h in handles {
                h.await;
            }
            simcore::now() - start
        });
        // 10 requests serialized on 1 core at 10us each >= 100us.
        assert!(elapsed >= Duration::from_micros(100), "elapsed {elapsed:?}");
    }

    #[test]
    fn handler_time_histograms_recorded() {
        let (sim, net, nodes) = setup(2);
        sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |ctx| async move {
                simcore::sleep(Duration::from_micros(7)).await;
                ctx.payload
            });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            for _ in 0..10 {
                client
                    .call(server.addr(), 1, Bytes::from_static(b"x"))
                    .await
                    .unwrap();
            }
            let h = server.handler_time(1).expect("recorded");
            assert_eq!(h.count(), 10);
            assert!((h.mean() - 7_000.0).abs() < 100.0, "mean {}", h.mean());
            assert!(server.handler_time(2).is_none());
        });
    }

    #[test]
    fn deterministic_run_fingerprint() {
        fn once() -> (u64, u64) {
            let (sim, net, nodes) = setup(2);
            net.set_loss_probability(0.02);
            sim.block_on(async move {
                let server = RpcBuilder::new(&net, nodes[1], 10).build();
                server.register(1, |ctx| async move { ctx.payload });
                let client = RpcBuilder::new(&net, nodes[0], 10).build();
                for _ in 0..50 {
                    client
                        .call(server.addr(), 1, Bytes::from(vec![7u8; 5000]))
                        .await
                        .unwrap();
                }
            });
            (sim.poll_count(), sim.now().nanos())
        }
        assert_eq!(once(), once());
    }

    #[test]
    fn exponential_backoff_spreads_retransmits() {
        let (sim, net, nodes) = setup(2);
        let (r, elapsed) = sim.block_on(async move {
            let client = RpcBuilder::new(&net, nodes[0], 10)
                .config(RpcConfig {
                    rto: Duration::from_micros(10),
                    rto_per_packet: Duration::ZERO,
                    rto_max: Duration::from_micros(80),
                    max_retries: 4,
                    ..Default::default()
                })
                .build();
            let start = simcore::now();
            let r = client
                .call(
                    Addr {
                        node: nodes[1],
                        port: 99,
                    },
                    1,
                    Bytes::from_static(b"x"),
                )
                .await;
            (r, simcore::now() - start)
        });
        assert_eq!(r, Err(RpcError::Timeout { attempts: 5 }));
        // Doubling waits 10+20+40+80+80 = 230us; a fixed RTO would fail at
        // 50us. Allow slack for transmission time.
        assert!(elapsed >= Duration::from_micros(230), "elapsed {elapsed:?}");
        assert!(elapsed < Duration::from_micros(300), "elapsed {elapsed:?}");
    }

    #[test]
    fn retry_budget_caps_total_retry_time() {
        let (sim, net, nodes) = setup(2);
        let (r, elapsed) = sim.block_on(async move {
            let client = RpcBuilder::new(&net, nodes[0], 10)
                .config(RpcConfig {
                    rto: Duration::from_micros(50),
                    rto_per_packet: Duration::ZERO,
                    rto_max: Duration::from_micros(50),
                    max_retries: 1_000_000, // budget, not count, must stop us
                    retry_budget: Some(Duration::from_micros(300)),
                    ..Default::default()
                })
                .build();
            let start = simcore::now();
            let r = client
                .call(
                    Addr {
                        node: nodes[1],
                        port: 99,
                    },
                    1,
                    Bytes::from_static(b"x"),
                )
                .await;
            (r, simcore::now() - start)
        });
        assert!(matches!(r, Err(RpcError::Timeout { attempts }) if attempts >= 2));
        // Fails at the first wakeup past the 300us budget (here 350us).
        assert!(elapsed >= Duration::from_micros(300), "elapsed {elapsed:?}");
        assert!(elapsed <= Duration::from_micros(400), "elapsed {elapsed:?}");
    }

    #[test]
    fn retry_jitter_is_deterministic_per_seed() {
        fn once() -> (u64, u64, u64) {
            let (sim, net, nodes) = setup(2);
            net.set_loss_probability(0.1);
            let stats = sim.block_on(async move {
                let server = RpcBuilder::new(&net, nodes[1], 10).build();
                server.register(1, |ctx| async move { ctx.payload });
                let client = RpcBuilder::new(&net, nodes[0], 10)
                    .config(RpcConfig {
                        rto: Duration::from_micros(100),
                        retry_jitter: 0.5,
                        ..Default::default()
                    })
                    .build();
                for _ in 0..50 {
                    client
                        .call(server.addr(), 1, Bytes::from(vec![3u8; 3000]))
                        .await
                        .unwrap();
                }
                client.stats().clone()
            });
            (sim.poll_count(), sim.now().nanos(), stats.retransmits.get())
        }
        let a = once();
        assert!(a.2 > 0, "loss must force jittered retransmits");
        assert_eq!(a, once());
    }

    #[test]
    fn offline_endpoint_drops_all_traffic_until_restart() {
        let (sim, net, nodes) = setup(2);
        sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |ctx| async move { ctx.payload });
            let client = RpcBuilder::new(&net, nodes[0], 10)
                .config(RpcConfig {
                    rto: Duration::from_micros(20),
                    rto_per_packet: Duration::ZERO,
                    max_retries: 3,
                    ..Default::default()
                })
                .build();
            server.set_offline(true);
            assert!(server.is_offline());
            let r = client
                .call(server.addr(), 1, Bytes::from_static(b"dead"))
                .await;
            assert!(matches!(r, Err(RpcError::Timeout { .. })));
            assert_eq!(server.stats().requests_handled.get(), 0);
            // Restart: same endpoint serves again without rebinding.
            server.set_offline(false);
            let r = client
                .call(server.addr(), 1, Bytes::from_static(b"alive"))
                .await
                .unwrap();
            assert_eq!(&r[..], b"alive");
        });
    }

    #[test]
    fn distinct_req_types_dispatch_to_distinct_handlers() {
        let (sim, net, nodes) = setup(2);
        sim.block_on(async move {
            let server = RpcBuilder::new(&net, nodes[1], 10).build();
            server.register(1, |_| async { Bytes::from_static(b"one") });
            server.register(2, |_| async { Bytes::from_static(b"two") });
            let client = RpcBuilder::new(&net, nodes[0], 10).build();
            let r1 = client.call(server.addr(), 1, Bytes::new()).await.unwrap();
            let r2 = client.call(server.addr(), 2, Bytes::new()).await.unwrap();
            assert_eq!(&r1[..], b"one");
            assert_eq!(&r2[..], b"two");
        });
    }
}
