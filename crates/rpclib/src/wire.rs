//! Wire format: a fixed 20-byte packet header followed by a payload
//! fragment.
//!
//! Mirrors eRPC's design: messages are fragmented into MTU-sized packets;
//! the header carries the request number, fragment index and total message
//! length so the receiver can reassemble out-of-order fragments.

use bytes::{Bytes, BytesMut};

/// Packet kind discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Request fragment (client → server).
    Request = 1,
    /// Response fragment (server → client).
    Response = 2,
    /// Response acknowledged; server may drop its cached response.
    Ack = 3,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::Request),
            2 => Some(Kind::Response),
            3 => Some(Kind::Ack),
            _ => None,
        }
    }
}

/// Magic byte guarding against stray datagrams.
pub const MAGIC: u8 = 0xD7;

/// Serialized header size in bytes.
pub const HEADER_BYTES: usize = 20;

/// Parsed packet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Packet kind.
    pub kind: Kind,
    /// Request handler type (application-level method id).
    pub req_type: u8,
    /// Client-assigned request number (unique per client endpoint).
    pub req_num: u64,
    /// Fragment index in `[0, num_pkts)`.
    pub pkt_idx: u16,
    /// Total number of fragments in the message.
    pub num_pkts: u16,
    /// Total message length in bytes.
    pub msg_len: u32,
}

impl Header {
    /// Encode just the header into its own 20-byte buffer.
    pub fn encode_header(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_BYTES);
        b.extend_from_slice(&[MAGIC, self.kind as u8, self.req_type, 0]);
        b.extend_from_slice(&self.req_num.to_le_bytes());
        b.extend_from_slice(&self.pkt_idx.to_le_bytes());
        b.extend_from_slice(&self.num_pkts.to_le_bytes());
        b.extend_from_slice(&self.msg_len.to_le_bytes());
        b.freeze()
    }

    /// Encode the header and append the fragment payload into one contiguous
    /// buffer (copies the fragment; the transmit path uses [`Packet`] with a
    /// shared fragment slice instead).
    pub fn encode(&self, fragment: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_BYTES + fragment.len());
        b.extend_from_slice(&self.encode_header());
        b.extend_from_slice(fragment);
        b.freeze()
    }

    /// Decode a contiguous packet into `(header, fragment)`. Returns `None`
    /// for malformed packets (wrong magic, short, unknown kind).
    pub fn decode(packet: &Bytes) -> Option<(Header, Bytes)> {
        let hdr = Self::parse(packet)?;
        Some((hdr, packet.slice(HEADER_BYTES..)))
    }

    /// Decode a packet delivered as separate header and fragment buffers (the
    /// gather-list shape the transmit path produces). Falls back to treating
    /// `head` as a contiguous packet when `body` is empty, so legacy
    /// single-buffer packets and raw hostile datagrams decode identically.
    pub fn decode_split(head: &Bytes, body: &Bytes) -> Option<(Header, Bytes)> {
        if head.len() == HEADER_BYTES {
            return Some((Self::parse(head)?, body.clone()));
        }
        if body.is_empty() {
            return Self::decode(head);
        }
        if head.is_empty() {
            return Self::decode(body);
        }
        // Irregular split (never produced by this stack): reassemble a
        // contiguous view and decode that.
        let mut whole = BytesMut::with_capacity(head.len() + body.len());
        whole.extend_from_slice(head);
        whole.extend_from_slice(body);
        Self::decode(&whole.freeze())
    }

    /// Parse the fixed header at the front of `buf`.
    fn parse(buf: &[u8]) -> Option<Header> {
        if buf.len() < HEADER_BYTES || buf[0] != MAGIC {
            return None;
        }
        let kind = Kind::from_u8(buf[1])?;
        let req_type = buf[2];
        let req_num = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let pkt_idx = u16::from_le_bytes(buf[12..14].try_into().ok()?);
        let num_pkts = u16::from_le_bytes(buf[14..16].try_into().ok()?);
        let msg_len = u32::from_le_bytes(buf[16..20].try_into().ok()?);
        if pkt_idx >= num_pkts {
            return None;
        }
        Some(Header {
            kind,
            req_type,
            req_num,
            pkt_idx,
            num_pkts,
            msg_len,
        })
    }
}

/// One wire packet as a two-part gather list: the encoded 20-byte header plus
/// a refcounted slice of the message payload. Keeping the fragment as a slice
/// of the original message (instead of copying it behind the header) is what
/// makes the transmit path zero-copy.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Encoded fixed-size header ([`HEADER_BYTES`] long).
    pub head: Bytes,
    /// Payload fragment: a shared slice of the original message.
    pub body: Bytes,
}

impl Packet {
    /// Total serialized length (header + fragment).
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// Whether the packet is empty (never true for packets built here).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy into one contiguous buffer (tests / legacy consumers).
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.len());
        b.extend_from_slice(&self.head);
        b.extend_from_slice(&self.body);
        b.freeze()
    }
}

/// Fragment `payload` into MTU-sized packets with the given header template.
/// Always emits at least one packet (possibly empty payload). Fragment bodies
/// are shared slices of `payload` — no payload byte is copied.
pub fn fragment(
    kind: Kind,
    req_type: u8,
    req_num: u64,
    payload: &Bytes,
    mtu: usize,
) -> Vec<Packet> {
    assert!(mtu > 0, "mtu must be positive");
    assert!(
        payload.len() <= u32::MAX as usize,
        "message too large for u32 msg_len"
    );
    let num_pkts = payload.len().div_ceil(mtu).max(1);
    assert!(
        num_pkts <= u16::MAX as usize,
        "message too large for u16 fragment count"
    );
    let mut out = Vec::with_capacity(num_pkts);
    for i in 0..num_pkts {
        let lo = i * mtu;
        let hi = ((i + 1) * mtu).min(payload.len());
        let hdr = Header {
            kind,
            req_type,
            req_num,
            pkt_idx: i as u16,
            num_pkts: num_pkts as u16,
            msg_len: payload.len() as u32,
        };
        out.push(Packet {
            head: hdr.encode_header(),
            body: payload.slice(lo..hi),
        });
    }
    out
}

/// Incremental message reassembly from fragments.
pub struct Reassembly {
    slots: Vec<Option<Bytes>>,
    received: usize,
    msg_len: u32,
}

impl Reassembly {
    /// Start reassembly from the first fragment seen (any index).
    pub fn new(hdr: &Header, frag: Bytes) -> Reassembly {
        let mut r = Reassembly {
            slots: vec![None; hdr.num_pkts as usize],
            received: 0,
            msg_len: hdr.msg_len,
        };
        r.offer(hdr, frag);
        r
    }

    /// Offer a fragment; duplicates are ignored. Returns `true` when the
    /// message is complete.
    ///
    /// Fragments whose `num_pkts` or `msg_len` disagree with the first
    /// fragment seen are rejected: they belong to a different (possibly
    /// forged) message and previously could corrupt the assembled payload by
    /// landing in a valid slot index.
    pub fn offer(&mut self, hdr: &Header, frag: Bytes) -> bool {
        if hdr.num_pkts as usize != self.slots.len() || hdr.msg_len != self.msg_len {
            return self.is_complete();
        }
        let idx = hdr.pkt_idx as usize;
        if idx < self.slots.len() && self.slots[idx].is_none() {
            self.slots[idx] = Some(frag);
            self.received += 1;
        }
        self.is_complete()
    }

    /// Whether all fragments have arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Concatenate the fragments into the full message.
    ///
    /// When the fragments are adjacent slices of one original buffer — the
    /// shape [`fragment`] produces and the simulated fabric preserves — the
    /// original `Bytes` is recovered without copying. Fragments from foreign
    /// allocations (e.g. deserialized from a real socket) fall back to one
    /// concatenating copy.
    ///
    /// # Panics
    /// Panics if the message is not complete.
    pub fn assemble(self) -> Bytes {
        assert!(self.is_complete(), "assembling incomplete message");
        let mut slots = self.slots;
        if slots.len() == 1 {
            return slots.pop().flatten().expect("slot filled");
        }
        // Fast path: refuse-to-copy merge of adjacent views.
        let mut acc = slots[0].clone().expect("slot filled");
        let mut contiguous = true;
        for s in &slots[1..] {
            match acc.try_unsplit(s.clone().expect("slot filled")) {
                Ok(merged) => acc = merged,
                Err((lhs, _)) => {
                    acc = lhs;
                    contiguous = false;
                    break;
                }
            }
        }
        if contiguous {
            return acc;
        }
        let mut out = BytesMut::with_capacity(self.msg_len as usize);
        for s in slots {
            out.extend_from_slice(&s.expect("slot filled"));
        }
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(kind: Kind) -> Header {
        Header {
            kind,
            req_type: 7,
            req_num: 0xDEAD_BEEF_0123,
            pkt_idx: 0,
            num_pkts: 1,
            msg_len: 5,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = hdr(Kind::Request);
        let pkt = h.encode(b"hello");
        assert_eq!(pkt.len(), HEADER_BYTES + 5);
        let (h2, frag) = Header::decode(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&frag[..], b"hello");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Header::decode(&Bytes::from_static(b"short")).is_none());
        let mut bad = hdr(Kind::Ack).encode(b"").to_vec();
        bad[0] = 0x00; // wrong magic
        assert!(Header::decode(&Bytes::from(bad)).is_none());
        let mut badkind = hdr(Kind::Ack).encode(b"").to_vec();
        badkind[1] = 99;
        assert!(Header::decode(&Bytes::from(badkind)).is_none());
        // pkt_idx >= num_pkts
        let mut h = hdr(Kind::Request);
        h.pkt_idx = 3;
        h.num_pkts = 2;
        assert!(Header::decode(&h.encode(b"x")).is_none());
    }

    #[test]
    fn fragment_empty_payload_one_packet() {
        let pkts = fragment(Kind::Request, 1, 9, &Bytes::new(), 100);
        assert_eq!(pkts.len(), 1);
        let (h, frag) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        assert_eq!(h.num_pkts, 1);
        assert_eq!(h.msg_len, 0);
        assert!(frag.is_empty());
    }

    #[test]
    fn fragment_and_reassemble_multi_packet() {
        let payload: Bytes = (0..10_000u32)
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>()
            .into();
        let pkts = fragment(Kind::Response, 2, 11, &payload, 4096);
        assert_eq!(pkts.len(), 10); // 40_000 / 4096 = 9.7 -> 10
                                    // Reassemble out of order with a duplicate.
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        parsed.rotate_left(3);
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        let dup = parsed[0].clone();
        r.offer(&dup.0, dup.1); // duplicate, ignored
        let mut complete = false;
        for (h, f) in parsed.into_iter().skip(1) {
            complete = r.offer(&h, f);
        }
        assert!(complete);
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn fragment_sizes_cover_payload_exactly() {
        let payload = Bytes::from(vec![7u8; 8192]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096);
        assert_eq!(pkts.len(), 2);
        for p in &pkts {
            assert_eq!(p.body.len(), 4096);
            assert_eq!(p.len(), HEADER_BYTES + 4096);
        }
    }

    #[test]
    fn fragment_bodies_share_payload_storage() {
        let payload = Bytes::from(vec![3u8; 10_000]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096);
        // Zero-copy: each body points into the original allocation.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.body.as_ptr(), payload[i * 4096..].as_ptr());
        }
    }

    #[test]
    fn assemble_in_order_recovers_original_without_copy() {
        let payload = Bytes::from(vec![9u8; 20_000]);
        let pkts = fragment(Kind::Response, 0, 5, &payload, 4096);
        let parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1) {
            r.offer(&h, f);
        }
        let out = r.assemble();
        assert_eq!(out, payload);
        // Same backing storage, not a concatenating copy.
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn assemble_out_of_order_still_zero_copy() {
        // Slots are indexed by pkt_idx, so arrival order doesn't matter for
        // the adjacency check.
        let payload = Bytes::from(vec![5u8; 12_000]);
        let pkts = fragment(Kind::Response, 0, 5, &payload, 4096);
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        parsed.reverse();
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1) {
            r.offer(&h, f);
        }
        let out = r.assemble();
        assert_eq!(out, payload);
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn assemble_foreign_fragments_copies() {
        // Fragments from unrelated allocations still assemble correctly.
        let h = |idx: u16| Header {
            kind: Kind::Request,
            req_type: 0,
            req_num: 1,
            pkt_idx: idx,
            num_pkts: 2,
            msg_len: 8,
        };
        let mut r = Reassembly::new(&h(0), Bytes::from(vec![1u8; 4]));
        assert!(r.offer(&h(1), Bytes::from(vec![2u8; 4])));
        assert_eq!(r.assemble(), Bytes::from(vec![1, 1, 1, 1, 2, 2, 2, 2]));
    }

    #[test]
    fn offer_rejects_mismatched_metadata() {
        let payload = Bytes::from(vec![7u8; 8192]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096);
        let (h0, f0) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        let mut r = Reassembly::new(&h0, f0);

        // Forged fragment claiming a different total packet count.
        let mut bad_pkts = h0;
        bad_pkts.pkt_idx = 1;
        bad_pkts.num_pkts = 3;
        assert!(!r.offer(&bad_pkts, Bytes::from_static(b"evil")));
        assert!(!r.is_complete());

        // Forged fragment claiming a different message length.
        let mut bad_len = h0;
        bad_len.pkt_idx = 1;
        bad_len.msg_len = 99;
        assert!(!r.offer(&bad_len, Bytes::from_static(b"evil")));
        assert!(!r.is_complete());

        // The genuine second fragment still completes the message.
        let (h1, f1) = Header::decode_split(&pkts[1].head, &pkts[1].body).unwrap();
        assert!(r.offer(&h1, f1));
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn decode_split_handles_legacy_contiguous_packets() {
        let h = hdr(Kind::Request);
        let contiguous = h.encode(b"hello");
        // Whole packet in the head segment (raw send path).
        let (h2, f2) = Header::decode_split(&contiguous, &Bytes::new()).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&f2[..], b"hello");
        // Whole packet in the body segment.
        let (h3, f3) = Header::decode_split(&Bytes::new(), &contiguous).unwrap();
        assert_eq!(h, h3);
        assert_eq!(&f3[..], b"hello");
        // Irregular split across the two segments.
        let (h4, f4) =
            Header::decode_split(&contiguous.slice(..10), &contiguous.slice(10..)).unwrap();
        assert_eq!(h, h4);
        assert_eq!(&f4[..], b"hello");
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn assemble_incomplete_panics() {
        let payload = Bytes::from(vec![1u8; 100]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 10);
        let (h, f) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        let r = Reassembly::new(&h, f);
        let _ = r.assemble();
    }
}
