//! Wire format: a fixed 20-byte packet header followed by a payload
//! fragment.
//!
//! Mirrors eRPC's design: messages are fragmented into MTU-sized packets;
//! the header carries the request number, fragment index and total message
//! length so the receiver can reassemble out-of-order fragments.

use bytes::{Bytes, BytesMut};

/// Packet kind discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Request fragment (client → server).
    Request = 1,
    /// Response fragment (server → client).
    Response = 2,
    /// Response acknowledged; server may drop its cached response.
    Ack = 3,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::Request),
            2 => Some(Kind::Response),
            3 => Some(Kind::Ack),
            _ => None,
        }
    }
}

/// Magic byte guarding against stray datagrams.
pub const MAGIC: u8 = 0xD7;

/// Serialized header size in bytes.
pub const HEADER_BYTES: usize = 20;

/// Parsed packet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Packet kind.
    pub kind: Kind,
    /// Request handler type (application-level method id).
    pub req_type: u8,
    /// Client-assigned request number (unique per client endpoint).
    pub req_num: u64,
    /// Fragment index in `[0, num_pkts)`.
    pub pkt_idx: u16,
    /// Total number of fragments in the message.
    pub num_pkts: u16,
    /// Total message length in bytes.
    pub msg_len: u32,
}

impl Header {
    /// Encode the header and append the fragment payload.
    pub fn encode(&self, fragment: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_BYTES + fragment.len());
        b.extend_from_slice(&[MAGIC, self.kind as u8, self.req_type, 0]);
        b.extend_from_slice(&self.req_num.to_le_bytes());
        b.extend_from_slice(&self.pkt_idx.to_le_bytes());
        b.extend_from_slice(&self.num_pkts.to_le_bytes());
        b.extend_from_slice(&self.msg_len.to_le_bytes());
        b.extend_from_slice(fragment);
        b.freeze()
    }

    /// Decode a packet into `(header, fragment)`. Returns `None` for
    /// malformed packets (wrong magic, short, unknown kind).
    pub fn decode(packet: &Bytes) -> Option<(Header, Bytes)> {
        if packet.len() < HEADER_BYTES || packet[0] != MAGIC {
            return None;
        }
        let kind = Kind::from_u8(packet[1])?;
        let req_type = packet[2];
        let req_num = u64::from_le_bytes(packet[4..12].try_into().ok()?);
        let pkt_idx = u16::from_le_bytes(packet[12..14].try_into().ok()?);
        let num_pkts = u16::from_le_bytes(packet[14..16].try_into().ok()?);
        let msg_len = u32::from_le_bytes(packet[16..20].try_into().ok()?);
        if pkt_idx >= num_pkts {
            return None;
        }
        Some((
            Header {
                kind,
                req_type,
                req_num,
                pkt_idx,
                num_pkts,
                msg_len,
            },
            packet.slice(HEADER_BYTES..),
        ))
    }
}

/// Fragment `payload` into MTU-sized packets with the given header template.
/// Always emits at least one packet (possibly empty payload).
pub fn fragment(kind: Kind, req_type: u8, req_num: u64, payload: &Bytes, mtu: usize) -> Vec<Bytes> {
    assert!(mtu > 0, "mtu must be positive");
    let num_pkts = payload.len().div_ceil(mtu).max(1);
    assert!(
        num_pkts <= u16::MAX as usize,
        "message too large for u16 fragment count"
    );
    let mut out = Vec::with_capacity(num_pkts);
    for i in 0..num_pkts {
        let lo = i * mtu;
        let hi = ((i + 1) * mtu).min(payload.len());
        let hdr = Header {
            kind,
            req_type,
            req_num,
            pkt_idx: i as u16,
            num_pkts: num_pkts as u16,
            msg_len: payload.len() as u32,
        };
        out.push(hdr.encode(&payload[lo..hi]));
    }
    out
}

/// Incremental message reassembly from fragments.
pub struct Reassembly {
    slots: Vec<Option<Bytes>>,
    received: usize,
    msg_len: u32,
}

impl Reassembly {
    /// Start reassembly from the first fragment seen (any index).
    pub fn new(hdr: &Header, frag: Bytes) -> Reassembly {
        let mut r = Reassembly {
            slots: vec![None; hdr.num_pkts as usize],
            received: 0,
            msg_len: hdr.msg_len,
        };
        r.offer(hdr, frag);
        r
    }

    /// Offer a fragment; duplicates are ignored. Returns `true` when the
    /// message is complete.
    pub fn offer(&mut self, hdr: &Header, frag: Bytes) -> bool {
        let idx = hdr.pkt_idx as usize;
        if idx < self.slots.len() && self.slots[idx].is_none() {
            self.slots[idx] = Some(frag);
            self.received += 1;
        }
        self.is_complete()
    }

    /// Whether all fragments have arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Concatenate the fragments into the full message.
    ///
    /// # Panics
    /// Panics if the message is not complete.
    pub fn assemble(self) -> Bytes {
        assert!(self.is_complete(), "assembling incomplete message");
        if self.slots.len() == 1 {
            return self
                .slots
                .into_iter()
                .next()
                .flatten()
                .expect("slot filled");
        }
        let mut out = BytesMut::with_capacity(self.msg_len as usize);
        for s in self.slots {
            out.extend_from_slice(&s.expect("slot filled"));
        }
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(kind: Kind) -> Header {
        Header {
            kind,
            req_type: 7,
            req_num: 0xDEAD_BEEF_0123,
            pkt_idx: 0,
            num_pkts: 1,
            msg_len: 5,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = hdr(Kind::Request);
        let pkt = h.encode(b"hello");
        assert_eq!(pkt.len(), HEADER_BYTES + 5);
        let (h2, frag) = Header::decode(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&frag[..], b"hello");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Header::decode(&Bytes::from_static(b"short")).is_none());
        let mut bad = hdr(Kind::Ack).encode(b"").to_vec();
        bad[0] = 0x00; // wrong magic
        assert!(Header::decode(&Bytes::from(bad)).is_none());
        let mut badkind = hdr(Kind::Ack).encode(b"").to_vec();
        badkind[1] = 99;
        assert!(Header::decode(&Bytes::from(badkind)).is_none());
        // pkt_idx >= num_pkts
        let mut h = hdr(Kind::Request);
        h.pkt_idx = 3;
        h.num_pkts = 2;
        assert!(Header::decode(&h.encode(b"x")).is_none());
    }

    #[test]
    fn fragment_empty_payload_one_packet() {
        let pkts = fragment(Kind::Request, 1, 9, &Bytes::new(), 100);
        assert_eq!(pkts.len(), 1);
        let (h, frag) = Header::decode(&pkts[0]).unwrap();
        assert_eq!(h.num_pkts, 1);
        assert_eq!(h.msg_len, 0);
        assert!(frag.is_empty());
    }

    #[test]
    fn fragment_and_reassemble_multi_packet() {
        let payload: Bytes = (0..10_000u32)
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>()
            .into();
        let pkts = fragment(Kind::Response, 2, 11, &payload, 4096);
        assert_eq!(pkts.len(), 10); // 40_000 / 4096 = 9.7 -> 10
                                    // Reassemble out of order with a duplicate.
        let mut parsed: Vec<(Header, Bytes)> =
            pkts.iter().map(|p| Header::decode(p).unwrap()).collect();
        parsed.rotate_left(3);
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        let dup = parsed[0].clone();
        r.offer(&dup.0, dup.1); // duplicate, ignored
        let mut complete = false;
        for (h, f) in parsed.into_iter().skip(1) {
            complete = r.offer(&h, f);
        }
        assert!(complete);
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn fragment_sizes_cover_payload_exactly() {
        let payload = Bytes::from(vec![7u8; 8192]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096);
        assert_eq!(pkts.len(), 2);
        for p in &pkts {
            let (_, frag) = Header::decode(p).unwrap();
            assert_eq!(frag.len(), 4096);
        }
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn assemble_incomplete_panics() {
        let payload = Bytes::from(vec![1u8; 100]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 10);
        let (h, f) = Header::decode(&pkts[0]).unwrap();
        let r = Reassembly::new(&h, f);
        let _ = r.assemble();
    }
}
