//! Wire format: a fixed 20-byte packet header, an optional trace-context
//! extension, and a payload fragment.
//!
//! Mirrors eRPC's design: messages are fragmented into MTU-sized packets;
//! the header carries the request number, fragment index and total message
//! length so the receiver can reassemble out-of-order fragments.
//!
//! Header byte 3 is a flags byte (zero since the first wire revision, so
//! old headers parse as flag-free). [`FLAG_TRACE`] marks a sampled
//! request: a small TLV extension carrying the [`TraceCtx`] follows the
//! fixed header. Unsampled traffic is byte-identical to the pre-telemetry
//! format — tracing that is off cannot perturb the packet schedule.

use bytes::{Bytes, BytesMut};
use telemetry::TraceCtx;

/// Packet kind discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Request fragment (client → server).
    Request = 1,
    /// Response fragment (server → client).
    Response = 2,
    /// Response acknowledged; server may drop its cached response.
    Ack = 3,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::Request),
            2 => Some(Kind::Response),
            3 => Some(Kind::Ack),
            _ => None,
        }
    }
}

/// Magic byte guarding against stray datagrams.
pub const MAGIC: u8 = 0xD7;

/// Fixed header size in bytes (excluding the optional trace extension).
pub const HEADER_BYTES: usize = 20;

/// Flags-byte bit: a trace-context extension follows the fixed header.
pub const FLAG_TRACE: u8 = 0x01;

/// Serialized trace-extension size: field count byte + 2 × (id + u64).
pub const TRACE_EXT_BYTES: usize = 1 + 2 * 9;

/// Parsed packet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Packet kind.
    pub kind: Kind,
    /// Request handler type (application-level method id).
    pub req_type: u8,
    /// Client-assigned request number (unique per client endpoint).
    pub req_num: u64,
    /// Fragment index in `[0, num_pkts)`.
    pub pkt_idx: u16,
    /// Total number of fragments in the message.
    pub num_pkts: u16,
    /// Total message length in bytes.
    pub msg_len: u32,
    /// Trace context for sampled requests (rides the wire as a TLV
    /// extension after the fixed header; absent on unsampled traffic).
    pub trace: Option<TraceCtx>,
}

impl Header {
    /// Encode the header (and trace extension, if any) into its own
    /// buffer: [`HEADER_BYTES`] long, plus [`TRACE_EXT_BYTES`] when
    /// traced.
    pub fn encode_header(&self) -> Bytes {
        let flags = if self.trace.is_some() { FLAG_TRACE } else { 0 };
        let mut b = BytesMut::with_capacity(HEADER_BYTES + TRACE_EXT_BYTES);
        b.extend_from_slice(&[MAGIC, self.kind as u8, self.req_type, flags]);
        b.extend_from_slice(&self.req_num.to_le_bytes());
        b.extend_from_slice(&self.pkt_idx.to_le_bytes());
        b.extend_from_slice(&self.num_pkts.to_le_bytes());
        b.extend_from_slice(&self.msg_len.to_le_bytes());
        if let Some(ctx) = self.trace {
            encode_trace_ext(ctx, &mut b);
        }
        b.freeze()
    }

    /// Encode the header and append the fragment payload into one contiguous
    /// buffer (copies the fragment; the transmit path uses [`Packet`] with a
    /// shared fragment slice instead).
    pub fn encode(&self, fragment: &[u8]) -> Bytes {
        let mut b = BytesMut::with_capacity(HEADER_BYTES + fragment.len());
        b.extend_from_slice(&self.encode_header());
        b.extend_from_slice(fragment);
        b.freeze()
    }

    /// Decode a contiguous packet into `(header, fragment)`. Returns `None`
    /// for malformed packets (wrong magic, short, unknown kind, bad trace
    /// extension).
    pub fn decode(packet: &Bytes) -> Option<(Header, Bytes)> {
        let (hdr, used) = Self::parse(packet)?;
        Some((hdr, packet.slice(used..)))
    }

    /// Decode a packet delivered as separate header and fragment buffers (the
    /// gather-list shape the transmit path produces). Falls back to treating
    /// `head` as a contiguous packet when `body` is empty, so legacy
    /// single-buffer packets and raw hostile datagrams decode identically.
    pub fn decode_split(head: &Bytes, body: &Bytes) -> Option<(Header, Bytes)> {
        // Fast path: the head segment is exactly one encoded header (with
        // or without trace extension) — the body is the fragment, shared.
        if let Some((hdr, used)) = Self::parse(head) {
            if used == head.len() {
                return Some((hdr, body.clone()));
            }
        }
        if body.is_empty() {
            return Self::decode(head);
        }
        if head.is_empty() {
            return Self::decode(body);
        }
        // Irregular split (never produced by this stack): reassemble a
        // contiguous view and decode that.
        let mut whole = BytesMut::with_capacity(head.len() + body.len());
        whole.extend_from_slice(head);
        whole.extend_from_slice(body);
        Self::decode(&whole.freeze())
    }

    /// Parse the header (and trace extension, if flagged) at the front of
    /// `buf`. Returns the header and the number of bytes consumed.
    fn parse(buf: &[u8]) -> Option<(Header, usize)> {
        if buf.len() < HEADER_BYTES || buf[0] != MAGIC {
            return None;
        }
        let kind = Kind::from_u8(buf[1])?;
        let req_type = buf[2];
        let flags = buf[3];
        if flags & !FLAG_TRACE != 0 {
            return None; // Unknown flag bits: not ours.
        }
        let req_num = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let pkt_idx = u16::from_le_bytes(buf[12..14].try_into().ok()?);
        let num_pkts = u16::from_le_bytes(buf[14..16].try_into().ok()?);
        let msg_len = u32::from_le_bytes(buf[16..20].try_into().ok()?);
        if pkt_idx >= num_pkts {
            return None;
        }
        let (trace, used) = if flags & FLAG_TRACE != 0 {
            let (ctx, ext) = decode_trace_ext(&buf[HEADER_BYTES..]).ok()?;
            (Some(ctx), HEADER_BYTES + ext)
        } else {
            (None, HEADER_BYTES)
        };
        Some((
            Header {
                kind,
                req_type,
                req_num,
                pkt_idx,
                num_pkts,
                msg_len,
                trace,
            },
            used,
        ))
    }
}

// ---------------------------------------------------------------------------
// Trace-context extension (TLV).
// ---------------------------------------------------------------------------

/// Trace-extension field id: trace identifier.
const TRACE_FIELD_TRACE_ID: u8 = 1;
/// Trace-extension field id: parent span identifier.
const TRACE_FIELD_SPAN_ID: u8 = 2;
/// Hard cap on the declared field count (hostile-input bound).
const MAX_TRACE_FIELDS: u8 = 4;

/// Why a trace extension failed to decode. Malformed extensions drop the
/// whole packet (the transport treats them like any other garbage
/// datagram); the typed error exists so hardening tests can assert the
/// failure mode instead of fishing for panics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceExtError {
    /// Buffer ended before the declared fields.
    Truncated,
    /// Declared field count exceeds the protocol bound.
    TooManyFields,
    /// The same field id appeared twice.
    DuplicateField,
    /// A field id this revision does not define.
    UnknownField,
    /// A required field (trace id / span id) is absent.
    MissingField,
}

/// Append the TLV trace extension for `ctx` to `out`
/// ([`TRACE_EXT_BYTES`] bytes: `[n=2][id][u64 LE]×2`).
pub fn encode_trace_ext(ctx: TraceCtx, out: &mut BytesMut) {
    out.extend_from_slice(&[2]);
    out.extend_from_slice(&[TRACE_FIELD_TRACE_ID]);
    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
    out.extend_from_slice(&[TRACE_FIELD_SPAN_ID]);
    out.extend_from_slice(&ctx.span_id.to_le_bytes());
}

/// Decode a TLV trace extension from the front of `buf`. Returns the
/// context and the number of bytes consumed. Total function: any input —
/// truncated, oversized, duplicated, unknown — yields a typed error,
/// never a panic.
pub fn decode_trace_ext(buf: &[u8]) -> Result<(TraceCtx, usize), TraceExtError> {
    let n = *buf.first().ok_or(TraceExtError::Truncated)?;
    if n > MAX_TRACE_FIELDS {
        return Err(TraceExtError::TooManyFields);
    }
    let mut pos = 1usize;
    let mut trace_id: Option<u64> = None;
    let mut span_id: Option<u64> = None;
    for _ in 0..n {
        let id = *buf.get(pos).ok_or(TraceExtError::Truncated)?;
        pos += 1;
        let raw = buf
            .get(pos..pos + 8)
            .ok_or(TraceExtError::Truncated)?
            .try_into()
            .expect("len checked");
        pos += 8;
        let v = u64::from_le_bytes(raw);
        let slot = match id {
            TRACE_FIELD_TRACE_ID => &mut trace_id,
            TRACE_FIELD_SPAN_ID => &mut span_id,
            _ => return Err(TraceExtError::UnknownField),
        };
        if slot.replace(v).is_some() {
            return Err(TraceExtError::DuplicateField);
        }
    }
    match (trace_id, span_id) {
        (Some(trace_id), Some(span_id)) => Ok((TraceCtx { trace_id, span_id }, pos)),
        _ => Err(TraceExtError::MissingField),
    }
}

/// One wire packet as a two-part gather list: the encoded header plus a
/// refcounted slice of the message payload. Keeping the fragment as a slice
/// of the original message (instead of copying it behind the header) is what
/// makes the transmit path zero-copy.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Encoded header: [`HEADER_BYTES`] long, plus [`TRACE_EXT_BYTES`]
    /// when the packet carries a trace context.
    pub head: Bytes,
    /// Payload fragment: a shared slice of the original message.
    pub body: Bytes,
}

impl Packet {
    /// Total serialized length (header + fragment).
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// Whether the packet is empty (never true for packets built here).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy into one contiguous buffer (tests / legacy consumers).
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.len());
        b.extend_from_slice(&self.head);
        b.extend_from_slice(&self.body);
        b.freeze()
    }
}

/// Fragment `payload` into MTU-sized packets with the given header template.
/// Always emits at least one packet (possibly empty payload). Fragment bodies
/// are shared slices of `payload` — no payload byte is copied. A trace
/// context, if given, rides every fragment's header so any one surviving
/// packet lets the receiver parent its work correctly.
pub fn fragment(
    kind: Kind,
    req_type: u8,
    req_num: u64,
    payload: &Bytes,
    mtu: usize,
    trace: Option<TraceCtx>,
) -> Vec<Packet> {
    assert!(mtu > 0, "mtu must be positive");
    assert!(
        payload.len() <= u32::MAX as usize,
        "message too large for u32 msg_len"
    );
    let num_pkts = payload.len().div_ceil(mtu).max(1);
    assert!(
        num_pkts <= u16::MAX as usize,
        "message too large for u16 fragment count"
    );
    let mut out = Vec::with_capacity(num_pkts);
    for i in 0..num_pkts {
        let lo = i * mtu;
        let hi = ((i + 1) * mtu).min(payload.len());
        let hdr = Header {
            kind,
            req_type,
            req_num,
            pkt_idx: i as u16,
            num_pkts: num_pkts as u16,
            msg_len: payload.len() as u32,
            trace,
        };
        out.push(Packet {
            head: hdr.encode_header(),
            body: payload.slice(lo..hi),
        });
    }
    out
}

/// Incremental message reassembly from fragments.
pub struct Reassembly {
    slots: Vec<Option<Bytes>>,
    received: usize,
    msg_len: u32,
}

impl Reassembly {
    /// Start reassembly from the first fragment seen (any index).
    pub fn new(hdr: &Header, frag: Bytes) -> Reassembly {
        let mut r = Reassembly {
            slots: vec![None; hdr.num_pkts as usize],
            received: 0,
            msg_len: hdr.msg_len,
        };
        r.offer(hdr, frag);
        r
    }

    /// Offer a fragment; duplicates are ignored. Returns `true` when the
    /// message is complete.
    ///
    /// Fragments whose `num_pkts` or `msg_len` disagree with the first
    /// fragment seen are rejected: they belong to a different (possibly
    /// forged) message and previously could corrupt the assembled payload by
    /// landing in a valid slot index.
    pub fn offer(&mut self, hdr: &Header, frag: Bytes) -> bool {
        if hdr.num_pkts as usize != self.slots.len() || hdr.msg_len != self.msg_len {
            return self.is_complete();
        }
        let idx = hdr.pkt_idx as usize;
        if idx < self.slots.len() && self.slots[idx].is_none() {
            self.slots[idx] = Some(frag);
            self.received += 1;
        }
        self.is_complete()
    }

    /// Whether all fragments have arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.slots.len()
    }

    /// Concatenate the fragments into the full message.
    ///
    /// When the fragments are adjacent slices of one original buffer — the
    /// shape [`fragment`] produces and the simulated fabric preserves — the
    /// original `Bytes` is recovered without copying. Fragments from foreign
    /// allocations (e.g. deserialized from a real socket) fall back to one
    /// concatenating copy.
    ///
    /// # Panics
    /// Panics if the message is not complete.
    pub fn assemble(self) -> Bytes {
        assert!(self.is_complete(), "assembling incomplete message");
        let mut slots = self.slots;
        if slots.len() == 1 {
            return slots.pop().flatten().expect("slot filled");
        }
        // Fast path: refuse-to-copy merge of adjacent views.
        let mut acc = slots[0].clone().expect("slot filled");
        let mut contiguous = true;
        for s in &slots[1..] {
            match acc.try_unsplit(s.clone().expect("slot filled")) {
                Ok(merged) => acc = merged,
                Err((lhs, _)) => {
                    acc = lhs;
                    contiguous = false;
                    break;
                }
            }
        }
        if contiguous {
            return acc;
        }
        let mut out = BytesMut::with_capacity(self.msg_len as usize);
        for s in slots {
            out.extend_from_slice(&s.expect("slot filled"));
        }
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(kind: Kind) -> Header {
        Header {
            kind,
            req_type: 7,
            req_num: 0xDEAD_BEEF_0123,
            pkt_idx: 0,
            num_pkts: 1,
            msg_len: 5,
            trace: None,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = hdr(Kind::Request);
        let pkt = h.encode(b"hello");
        assert_eq!(pkt.len(), HEADER_BYTES + 5);
        let (h2, frag) = Header::decode(&pkt).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&frag[..], b"hello");
    }

    #[test]
    fn traced_header_roundtrip_and_sizes() {
        let ctx = TraceCtx {
            trace_id: 0x1122_3344_5566_7788,
            span_id: 0x99AA_BBCC_DDEE_FF00,
        };
        let mut h = hdr(Kind::Request);
        h.trace = Some(ctx);
        let head = h.encode_header();
        assert_eq!(head.len(), HEADER_BYTES + TRACE_EXT_BYTES);
        let pkt = h.encode(b"hello");
        let (h2, frag) = Header::decode(&pkt).unwrap();
        assert_eq!(h2.trace, Some(ctx));
        assert_eq!(&frag[..], b"hello");
        // Untraced headers keep the exact pre-extension encoding.
        assert_eq!(hdr(Kind::Request).encode_header().len(), HEADER_BYTES);
    }

    #[test]
    fn traced_decode_split_stays_zero_copy() {
        let payload = Bytes::from(vec![42u8; 300]);
        let ctx = TraceCtx {
            trace_id: 1,
            span_id: 2,
        };
        for trace in [None, Some(ctx)] {
            let pkts = fragment(Kind::Request, 1, 5, &payload, 4096, trace);
            assert_eq!(pkts.len(), 1);
            let (h, frag) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
            assert_eq!(h.trace, trace);
            // Zero-copy: the returned fragment is the body slice itself.
            assert_eq!(frag.as_ptr(), pkts[0].body.as_ptr());
        }
    }

    #[test]
    fn trace_ext_decode_rejects_each_malformation() {
        let ctx = TraceCtx {
            trace_id: 7,
            span_id: 8,
        };
        let mut good = BytesMut::new();
        encode_trace_ext(ctx, &mut good);
        assert_eq!(decode_trace_ext(&good), Ok((ctx, TRACE_EXT_BYTES)));

        assert_eq!(decode_trace_ext(&[]), Err(TraceExtError::Truncated));
        assert_eq!(
            decode_trace_ext(&good[..TRACE_EXT_BYTES - 1]),
            Err(TraceExtError::Truncated)
        );
        assert_eq!(decode_trace_ext(&[5]), Err(TraceExtError::TooManyFields));
        let mut dup = vec![2u8];
        for _ in 0..2 {
            dup.push(1);
            dup.extend_from_slice(&7u64.to_le_bytes());
        }
        assert_eq!(decode_trace_ext(&dup), Err(TraceExtError::DuplicateField));
        let mut unknown = vec![1u8, 9u8];
        unknown.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(decode_trace_ext(&unknown), Err(TraceExtError::UnknownField));
        let mut missing = vec![1u8, 2u8];
        missing.extend_from_slice(&8u64.to_le_bytes());
        assert_eq!(decode_trace_ext(&missing), Err(TraceExtError::MissingField));

        // A header advertising a malformed extension drops cleanly.
        let mut h = hdr(Kind::Request);
        h.trace = Some(ctx);
        let mut raw = h.encode(b"x").to_vec();
        raw[HEADER_BYTES] = 5; // corrupt the field count
        assert!(Header::decode(&Bytes::from(raw)).is_none());
        // Unknown flag bits are rejected outright.
        let mut flags = hdr(Kind::Request).encode(b"x").to_vec();
        flags[3] = 0x80;
        assert!(Header::decode(&Bytes::from(flags)).is_none());
    }

    #[test]
    fn trace_ctx_rides_every_fragment() {
        let payload = Bytes::from(vec![9u8; 1000]);
        let ctx = TraceCtx {
            trace_id: 3,
            span_id: 4,
        };
        let pkts = fragment(Kind::Request, 1, 5, &payload, 100, Some(ctx));
        assert_eq!(pkts.len(), 10);
        for p in &pkts {
            let (h, _) = Header::decode_split(&p.head, &p.body).unwrap();
            assert_eq!(h.trace, Some(ctx), "ctx survives on every fragment");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Header::decode(&Bytes::from_static(b"short")).is_none());
        let mut bad = hdr(Kind::Ack).encode(b"").to_vec();
        bad[0] = 0x00; // wrong magic
        assert!(Header::decode(&Bytes::from(bad)).is_none());
        let mut badkind = hdr(Kind::Ack).encode(b"").to_vec();
        badkind[1] = 99;
        assert!(Header::decode(&Bytes::from(badkind)).is_none());
        // pkt_idx >= num_pkts
        let mut h = hdr(Kind::Request);
        h.pkt_idx = 3;
        h.num_pkts = 2;
        assert!(Header::decode(&h.encode(b"x")).is_none());
    }

    #[test]
    fn fragment_empty_payload_one_packet() {
        let pkts = fragment(Kind::Request, 1, 9, &Bytes::new(), 100, None);
        assert_eq!(pkts.len(), 1);
        let (h, frag) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        assert_eq!(h.num_pkts, 1);
        assert_eq!(h.msg_len, 0);
        assert!(frag.is_empty());
    }

    #[test]
    fn fragment_and_reassemble_multi_packet() {
        let payload: Bytes = (0..10_000u32)
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>()
            .into();
        let pkts = fragment(Kind::Response, 2, 11, &payload, 4096, None);
        assert_eq!(pkts.len(), 10); // 40_000 / 4096 = 9.7 -> 10
                                    // Reassemble out of order with a duplicate.
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        parsed.rotate_left(3);
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        let dup = parsed[0].clone();
        r.offer(&dup.0, dup.1); // duplicate, ignored
        let mut complete = false;
        for (h, f) in parsed.into_iter().skip(1) {
            complete = r.offer(&h, f);
        }
        assert!(complete);
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn fragment_sizes_cover_payload_exactly() {
        let payload = Bytes::from(vec![7u8; 8192]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096, None);
        assert_eq!(pkts.len(), 2);
        for p in &pkts {
            assert_eq!(p.body.len(), 4096);
            assert_eq!(p.len(), HEADER_BYTES + 4096);
        }
    }

    #[test]
    fn fragment_bodies_share_payload_storage() {
        let payload = Bytes::from(vec![3u8; 10_000]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096, None);
        // Zero-copy: each body points into the original allocation.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.body.as_ptr(), payload[i * 4096..].as_ptr());
        }
    }

    #[test]
    fn assemble_in_order_recovers_original_without_copy() {
        let payload = Bytes::from(vec![9u8; 20_000]);
        let pkts = fragment(Kind::Response, 0, 5, &payload, 4096, None);
        let parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1) {
            r.offer(&h, f);
        }
        let out = r.assemble();
        assert_eq!(out, payload);
        // Same backing storage, not a concatenating copy.
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn assemble_out_of_order_still_zero_copy() {
        // Slots are indexed by pkt_idx, so arrival order doesn't matter for
        // the adjacency check.
        let payload = Bytes::from(vec![5u8; 12_000]);
        let pkts = fragment(Kind::Response, 0, 5, &payload, 4096, None);
        let mut parsed: Vec<(Header, Bytes)> = pkts
            .iter()
            .map(|p| Header::decode_split(&p.head, &p.body).unwrap())
            .collect();
        parsed.reverse();
        let (h0, f0) = parsed[0].clone();
        let mut r = Reassembly::new(&h0, f0);
        for (h, f) in parsed.into_iter().skip(1) {
            r.offer(&h, f);
        }
        let out = r.assemble();
        assert_eq!(out, payload);
        assert_eq!(out.as_ptr(), payload.as_ptr());
    }

    #[test]
    fn assemble_foreign_fragments_copies() {
        // Fragments from unrelated allocations still assemble correctly.
        let h = |idx: u16| Header {
            kind: Kind::Request,
            req_type: 0,
            req_num: 1,
            pkt_idx: idx,
            num_pkts: 2,
            msg_len: 8,
            trace: None,
        };
        let mut r = Reassembly::new(&h(0), Bytes::from(vec![1u8; 4]));
        assert!(r.offer(&h(1), Bytes::from(vec![2u8; 4])));
        assert_eq!(r.assemble(), Bytes::from(vec![1, 1, 1, 1, 2, 2, 2, 2]));
    }

    #[test]
    fn offer_rejects_mismatched_metadata() {
        let payload = Bytes::from(vec![7u8; 8192]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 4096, None);
        let (h0, f0) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        let mut r = Reassembly::new(&h0, f0);

        // Forged fragment claiming a different total packet count.
        let mut bad_pkts = h0;
        bad_pkts.pkt_idx = 1;
        bad_pkts.num_pkts = 3;
        assert!(!r.offer(&bad_pkts, Bytes::from_static(b"evil")));
        assert!(!r.is_complete());

        // Forged fragment claiming a different message length.
        let mut bad_len = h0;
        bad_len.pkt_idx = 1;
        bad_len.msg_len = 99;
        assert!(!r.offer(&bad_len, Bytes::from_static(b"evil")));
        assert!(!r.is_complete());

        // The genuine second fragment still completes the message.
        let (h1, f1) = Header::decode_split(&pkts[1].head, &pkts[1].body).unwrap();
        assert!(r.offer(&h1, f1));
        assert_eq!(r.assemble(), payload);
    }

    #[test]
    fn decode_split_handles_legacy_contiguous_packets() {
        let h = hdr(Kind::Request);
        let contiguous = h.encode(b"hello");
        // Whole packet in the head segment (raw send path).
        let (h2, f2) = Header::decode_split(&contiguous, &Bytes::new()).unwrap();
        assert_eq!(h, h2);
        assert_eq!(&f2[..], b"hello");
        // Whole packet in the body segment.
        let (h3, f3) = Header::decode_split(&Bytes::new(), &contiguous).unwrap();
        assert_eq!(h, h3);
        assert_eq!(&f3[..], b"hello");
        // Irregular split across the two segments.
        let (h4, f4) =
            Header::decode_split(&contiguous.slice(..10), &contiguous.slice(10..)).unwrap();
        assert_eq!(h, h4);
        assert_eq!(&f4[..], b"hello");
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn assemble_incomplete_panics() {
        let payload = Bytes::from(vec![1u8; 100]);
        let pkts = fragment(Kind::Request, 0, 1, &payload, 10, None);
        let (h, f) = Header::decode_split(&pkts[0].head, &pkts[0].body).unwrap();
        let r = Reassembly::new(&h, f);
        let _ = r.assemble();
    }
}
