//! Multi-op message framing: pack several sub-messages into one RPC
//! message body and unpack them zero-copy.
//!
//! The transport ([`crate::wire`]) moves opaque message bodies; batching
//! layers above it (e.g. the DM client's control-op coalescer) need to put
//! *several* logical operations inside one body. This module is that
//! framing, shared so every protocol that batches uses the same layout
//! and the same hostile-input hardening:
//!
//! * **Tagged** (requests): `[count u32][tag u8][len u32][bytes]...` —
//!   each sub-message carries a one-byte type tag, and the leading count
//!   lets the decoder pre-validate against forged headers.
//! * **Plain** (responses): `[len u32][bytes]...` to end of buffer — the
//!   sub-response order mirrors the request, so no tags are needed.
//!
//! Decoding slices the input [`Bytes`] instead of copying: each returned
//! sub-message shares the received buffer's storage.

use bytes::{BufMut, Bytes, BytesMut};

/// Per-item framing overhead of the tagged layout (tag byte + u32 length).
const TAGGED_ITEM_HEADER: usize = 5;

/// Frame tagged sub-messages into one body.
pub fn encode_tagged(items: &[(u8, Bytes)]) -> Bytes {
    let len = 4 + items
        .iter()
        .map(|(_, b)| TAGGED_ITEM_HEADER + b.len())
        .sum::<usize>();
    let mut out = BytesMut::with_capacity(len);
    out.put_u32_le(items.len() as u32);
    for (tag, body) in items {
        out.put_u8(*tag);
        out.put_u32_le(body.len() as u32);
        out.extend_from_slice(body);
    }
    out.freeze()
}

/// Decode a tagged body into `(tag, sub-message)` items, zero-copy.
/// Returns `None` on any malformed input (short buffer, absurd count,
/// trailing garbage).
pub fn decode_tagged(body: &Bytes) -> Option<Vec<(u8, Bytes)>> {
    let mut pos = 0usize;
    let n = read_u32(body, &mut pos)? as usize;
    // Each item needs at least its frame header: a cheap sanity bound so
    // a hostile count cannot trigger a huge allocation.
    if n > body.len() / TAGGED_ITEM_HEADER {
        return None;
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *body.get(pos)?;
        pos += 1;
        let len = read_u32(body, &mut pos)? as usize;
        items.push((tag, take(body, &mut pos, len)?));
    }
    if pos != body.len() {
        return None;
    }
    Some(items)
}

/// Frame untagged sub-messages into one body.
pub fn encode_plain(items: &[Bytes]) -> Bytes {
    let len = items.iter().map(|b| 4 + b.len()).sum::<usize>();
    let mut out = BytesMut::with_capacity(len);
    for body in items {
        out.put_u32_le(body.len() as u32);
        out.extend_from_slice(body);
    }
    out.freeze()
}

/// Decode an untagged body into its sub-messages, zero-copy. Returns
/// `None` on malformed input.
pub fn decode_plain(body: &Bytes) -> Option<Vec<Bytes>> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < body.len() {
        let len = read_u32(body, &mut pos)? as usize;
        out.push(take(body, &mut pos, len)?);
    }
    Some(out)
}

fn read_u32(body: &Bytes, pos: &mut usize) -> Option<u32> {
    let b = body.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(b.try_into().expect("len checked")))
}

fn take(body: &Bytes, pos: &mut usize, len: usize) -> Option<Bytes> {
    let end = pos.checked_add(len)?;
    if end > body.len() {
        return None;
    }
    let out = body.slice(*pos..end);
    *pos = end;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_roundtrip() {
        let items = vec![
            (7u8, Bytes::from_static(b"hello")),
            (1, Bytes::new()),
            (255, Bytes::from(vec![9u8; 4096])),
        ];
        assert_eq!(decode_tagged(&encode_tagged(&items)).unwrap(), items);
        assert_eq!(decode_tagged(&encode_tagged(&[])).unwrap(), vec![]);
    }

    #[test]
    fn plain_roundtrip() {
        let items = vec![
            Bytes::from_static(b"a"),
            Bytes::new(),
            Bytes::from_static(b"bcd"),
        ];
        assert_eq!(decode_plain(&encode_plain(&items)).unwrap(), items);
        assert_eq!(
            decode_plain(&encode_plain(&[])).unwrap(),
            vec![] as Vec<Bytes>
        );
    }

    #[test]
    fn decoding_is_zero_copy() {
        let items = vec![(3u8, Bytes::from(vec![5u8; 100]))];
        let body = encode_tagged(&items);
        let decoded = decode_tagged(&body).unwrap();
        assert_eq!(decoded[0].1.as_ptr(), body[9..].as_ptr());
    }

    #[test]
    fn rejects_malformed() {
        // Short / truncated buffers.
        assert!(decode_tagged(&Bytes::from_static(&[1, 2])).is_none());
        assert!(decode_plain(&Bytes::from_static(&[1, 2])).is_none());
        // Count claims more items than the body could hold.
        let huge = Bytes::copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_tagged(&huge).is_none());
        // Item length runs past the end of the buffer.
        let mut bad = encode_tagged(&[(1, Bytes::from_static(b"xy"))]).to_vec();
        bad[5] = 200; // inflate the item length
        assert!(decode_tagged(&Bytes::from(bad)).is_none());
        let mut badp = encode_plain(&[Bytes::from_static(b"xy")]).to_vec();
        badp[0] = 200;
        assert!(decode_plain(&Bytes::from(badp)).is_none());
        // Trailing garbage after the declared items.
        let mut trail = encode_tagged(&[(1, Bytes::from_static(b"xy"))]).to_vec();
        trail.push(0xEE);
        assert!(decode_tagged(&Bytes::from(trail)).is_none());
    }
}
