//! Chrome `trace_event` JSON export.
//!
//! Emits the subset of the format that Perfetto and `chrome://tracing`
//! load: complete (`ph: "X"`) events with microsecond timestamps, one
//! "process" per simulated node, plus `process_name` metadata. The string
//! is built by hand — deterministic field order, no float formatting —
//! so a fixed seed exports byte-identical JSON on every run.

use std::fmt::Write as _;

use crate::span::SpanRecord;

/// Format sim-nanoseconds as a µs decimal with exactly 3 fraction digits
/// (`1234` → `"1.234"`), keeping full ns precision without floats.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render spans (already in a stable order — see `Tracer::records`) as a
/// Chrome trace-event JSON document. `node_names[i]` labels node `i`'s
/// process track; missing/empty entries fall back to `node<i>`.
pub fn chrome_trace_json(records: &[SpanRecord], node_names: &[String]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 192);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;

    // Process-name metadata for every node that appears in the trace.
    let mut nodes: Vec<u32> = records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        let fallback = format!("node{node}");
        let name = node_names
            .get(node as usize)
            .filter(|n| !n.is_empty())
            .cloned()
            .unwrap_or(fallback);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&name)
        );
    }

    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":0,\"args\":{{\"trace_id\":\"{:016x}\",\
             \"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\"",
            escape(r.name),
            r.kind.label(),
            micros(r.start.nanos()),
            micros(r.dur_nanos()),
            r.node,
            r.trace_id,
            r.span_id,
            r.parent_id,
        );
        for (k, v) in r.attrs() {
            let _ = write!(out, ",\"{}\":{v}", escape(k));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Merge per-partition span records (each partition's `Tracer::records`)
/// into one stream in the canonical `(start, span_id)` order — the same
/// order a single tracer would report. Span ids come from per-partition
/// seeded RNG streams, so the merged order (and any export built from it)
/// is a pure function of the partition contents: independent of thread
/// count and of how partitions were packed onto threads.
pub fn merge_partition_records(parts: Vec<Vec<SpanRecord>>) -> Vec<SpanRecord> {
    let mut all: Vec<SpanRecord> = parts.into_iter().flatten().collect();
    all.sort_by_key(|r| (r.start, r.span_id));
    all
}

/// Merge per-partition node-name tables (each partition's
/// `Tracer::node_names`) element-wise, preferring the first non-empty
/// entry for each node id.
pub fn merge_node_names(parts: Vec<Vec<String>>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for names in parts {
        if out.len() < names.len() {
            out.resize(names.len(), String::new());
        }
        for (i, n) in names.into_iter().enumerate() {
            if out[i].is_empty() {
                out[i] = n;
            }
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal. Span names are
/// static identifiers, so this almost never rewrites anything, but the
/// export must stay valid JSON for arbitrary node names.
fn escape(s: &str) -> String {
    if s.chars().all(|c| c != '"' && c != '\\' && !c.is_control()) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
