//! The flight recorder: head-sampled span collection into bounded
//! per-node rings, plus thread-local installation and task-local context
//! propagation.
//!
//! Hot-path discipline (PR 1 slab rules): when no tracer is installed or
//! sampling is off, every hook site costs one thread-local `Cell` read
//! and returns `None` — no allocation, no RNG draw, no borrow. When
//! tracing is on but the current request was not head-sampled, a hook
//! additionally consults the task-context map and still allocates
//! nothing. Span ids come from a dedicated [`SimRng`] stream so traces
//! are byte-reproducible across runs.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use simcore::{SimRng, SimTime, TaskId};

use crate::span::{SpanKind, SpanRecord, TraceCtx, MAX_ATTRS};

/// Default per-node ring capacity (spans kept per node before the oldest
/// are overwritten).
pub const DEFAULT_RING_CAP: usize = 4096;

/// One node's bounded span ring. Slots are allocated once, then reused.
struct NodeRing {
    slots: Vec<SpanRecord>,
    /// Index of the oldest record once the ring is full.
    head: usize,
    /// Total records ever pushed (so overwrites are observable).
    pushed: u64,
}

impl NodeRing {
    fn new() -> NodeRing {
        NodeRing {
            slots: Vec::new(),
            head: 0,
            pushed: 0,
        }
    }

    fn push(&mut self, rec: SpanRecord, cap: usize) {
        self.pushed += 1;
        if self.slots.len() < cap {
            self.slots.push(rec);
        } else {
            self.slots[self.head] = rec;
            self.head = (self.head + 1) % cap;
        }
    }

    /// Records oldest-first.
    fn collect_into(&self, out: &mut Vec<SpanRecord>) {
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
    }
}

struct TracerInner {
    rng: SimRng,
    sample_every: Cell<u64>,
    ring_cap: usize,
    rings: RefCell<Vec<NodeRing>>,
    node_names: RefCell<Vec<String>>,
    /// Requests seen by [`start_trace`] (sampled or not).
    traces_seen: Cell<u64>,
    traces_sampled: Cell<u64>,
    /// Per-task stacks of active contexts. Keyed by the executor task so
    /// interleaved tasks never observe each other's context.
    ctx: RefCell<HashMap<Option<TaskId>, Vec<TraceCtx>>>,
}

impl TracerInner {
    fn fresh_id(&self) -> u64 {
        loop {
            let v = self.rng.next_u64();
            if v != 0 {
                return v;
            }
        }
    }

    fn push_ctx(&self, task: Option<TaskId>, ctx: TraceCtx) {
        self.ctx.borrow_mut().entry(task).or_default().push(ctx);
    }

    /// Remove the context naming `span_id` from `task`'s stack (top in the
    /// common LIFO case; searched so out-of-order guard drops stay safe).
    fn pop_ctx(&self, task: Option<TaskId>, span_id: u64) {
        let mut map = self.ctx.borrow_mut();
        if let Some(stack) = map.get_mut(&task) {
            if let Some(i) = stack.iter().rposition(|c| c.span_id == span_id) {
                stack.remove(i);
            }
            if stack.is_empty() {
                map.remove(&task);
            }
        }
    }

    fn current_ctx(&self) -> Option<TraceCtx> {
        let task = simcore::current_task();
        self.ctx.borrow().get(&task).and_then(|s| s.last()).copied()
    }

    fn record(&self, rec: SpanRecord) {
        let mut rings = self.rings.borrow_mut();
        let idx = rec.node as usize;
        if rings.len() <= idx {
            rings.resize_with(idx + 1, NodeRing::new);
        }
        rings[idx].push(rec, self.ring_cap);
    }
}

/// A deterministic sim-time tracer. Clone-cheap handle; install it on the
/// current thread with [`Tracer::install`] so the instrumentation hooks
/// throughout the stack can reach it.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl Tracer {
    /// Create a tracer. `seed` feeds the id generator; `sample_every`
    /// head-samples one request trace in `N` (`0` disables sampling
    /// entirely, `1` traces every request).
    pub fn new(seed: u64, sample_every: u64) -> Tracer {
        Tracer::with_capacity(seed, sample_every, DEFAULT_RING_CAP)
    }

    /// [`Tracer::new`] with an explicit per-node ring capacity.
    pub fn with_capacity(seed: u64, sample_every: u64, ring_cap: usize) -> Tracer {
        assert!(ring_cap > 0, "ring capacity must be positive");
        Tracer {
            inner: Rc::new(TracerInner {
                rng: SimRng::new(seed ^ 0x7E1E_3E7E_0C0F_FEE5),
                sample_every: Cell::new(sample_every),
                ring_cap,
                rings: RefCell::new(Vec::new()),
                node_names: RefCell::new(Vec::new()),
                traces_seen: Cell::new(0),
                traces_sampled: Cell::new(0),
                ctx: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// Install on the current thread; hooks are live until the guard
    /// drops (the previous tracer, if any, is restored).
    pub fn install(&self) -> InstallGuard {
        let prev = TRACER.with(|t| t.borrow_mut().replace(self.inner.clone()));
        ACTIVE.with(|a| a.set(self.inner.sample_every.get() != 0));
        InstallGuard { prev }
    }

    /// Change the head-sampling rate (`0` = off). Turning sampling off on
    /// the installed tracer drops every hook back to the one-`Cell`-read
    /// fast path.
    pub fn set_sample_every(&self, n: u64) {
        self.inner.sample_every.set(n);
        let installed = TRACER.with(|t| {
            t.borrow()
                .as_ref()
                .is_some_and(|i| Rc::ptr_eq(i, &self.inner))
        });
        if installed {
            ACTIVE.with(|a| a.set(n != 0));
        }
    }

    /// Name a node for the trace export (Perfetto process names).
    pub fn set_node_name(&self, node: u32, name: impl Into<String>) {
        let mut names = self.inner.node_names.borrow_mut();
        let idx = node as usize;
        if names.len() <= idx {
            names.resize(idx + 1, String::new());
        }
        names[idx] = name.into();
    }

    /// Node names indexed by node id (empty string = unnamed).
    pub fn node_names(&self) -> Vec<String> {
        self.inner.node_names.borrow().clone()
    }

    /// All recorded spans, ordered by `(start, span_id)` so the output is
    /// independent of ring/node iteration details.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ring in self.inner.rings.borrow().iter() {
            ring.collect_into(&mut out);
        }
        out.sort_by_key(|r| (r.start, r.span_id));
        out
    }

    /// Requests observed / requests sampled by [`start_trace`].
    pub fn sampling_stats(&self) -> (u64, u64) {
        (
            self.inner.traces_seen.get(),
            self.inner.traces_sampled.get(),
        )
    }

    /// Discard all recorded spans (ring slots are kept allocated).
    pub fn clear(&self) {
        for ring in self.inner.rings.borrow_mut().iter_mut() {
            ring.slots.clear();
            ring.head = 0;
        }
    }
}

/// Restores the previously-installed tracer on drop.
pub struct InstallGuard {
    prev: Option<Rc<TracerInner>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| {
            a.set(prev.as_ref().is_some_and(|p| p.sample_every.get() != 0));
        });
        TRACER.with(|t| *t.borrow_mut() = prev);
    }
}

thread_local! {
    /// Fast gate: true iff a tracer is installed on this thread AND its
    /// sampling is on. Checked before anything else on every hook, so an
    /// installed-but-off tracer costs exactly as much as no tracer.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<Rc<TracerInner>>> = const { RefCell::new(None) };
}

/// Whether a tracer is installed on this thread with sampling on (one
/// `Cell` read).
#[inline]
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

fn with_tracer<R>(f: impl FnOnce(&Rc<TracerInner>) -> Option<R>) -> Option<R> {
    TRACER.with(|t| t.borrow().as_ref().and_then(f))
}

/// An in-flight span. Ends (and is written to the flight recorder) when
/// dropped, or explicitly via [`SpanGuard::end`]. May be moved into a
/// spawned task to end there (e.g. a packet-delivery pipeline).
pub struct SpanGuard {
    tracer: Rc<TracerInner>,
    rec: SpanRecord,
    /// Task whose context stack holds this span's ctx (if pushed).
    ctx_task: Option<Option<TaskId>>,
    finished: bool,
}

impl SpanGuard {
    /// This span's context, for handing to children (wire or task).
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.rec.trace_id,
            span_id: self.rec.span_id,
        }
    }

    /// Attach a typed attribute. Silently ignored past [`MAX_ATTRS`].
    pub fn attr(&mut self, key: &'static str, value: u64) {
        let n = self.rec.n_attrs as usize;
        if n < MAX_ATTRS {
            self.rec.attrs[n] = (key, value);
            self.rec.n_attrs += 1;
        }
    }

    /// End the span now.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.rec.end = simcore::try_now().unwrap_or(self.rec.start);
        if let Some(task) = self.ctx_task {
            self.tracer.pop_ctx(task, self.rec.span_id);
        }
        self.tracer.record(self.rec);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

fn new_span(
    tracer: &Rc<TracerInner>,
    kind: SpanKind,
    name: &'static str,
    node: u32,
    trace_id: u64,
    parent_id: u64,
    push_ctx: bool,
) -> SpanGuard {
    let span_id = tracer.fresh_id();
    let start = simcore::try_now().unwrap_or(SimTime::ZERO);
    let ctx_task = if push_ctx {
        let task = simcore::current_task();
        tracer.push_ctx(task, TraceCtx { trace_id, span_id });
        Some(task)
    } else {
        None
    };
    SpanGuard {
        tracer: tracer.clone(),
        rec: SpanRecord {
            trace_id,
            span_id,
            parent_id,
            kind,
            name,
            node,
            start,
            end: start,
            attrs: [("", 0); MAX_ATTRS],
            n_attrs: 0,
        },
        ctx_task,
        finished: false,
    }
}

/// Begin a new trace at an application request boundary, subject to head
/// sampling. Returns `None` when no tracer is installed, sampling is off,
/// or this request was not selected.
pub fn start_trace(name: &'static str, node: u32) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| {
        let n = t.traces_seen.get();
        t.traces_seen.set(n + 1);
        let every = t.sample_every.get();
        if every == 0 || n % every != 0 {
            return None;
        }
        t.traces_sampled.set(t.traces_sampled.get() + 1);
        let trace_id = t.fresh_id();
        Some(new_span(
            t,
            SpanKind::Request,
            name,
            node,
            trace_id,
            0,
            true,
        ))
    })
}

/// Start a child span of the current task's context, making it the new
/// context (children started in this task nest under it). `None` when
/// untraced.
pub fn span(kind: SpanKind, name: &'static str, node: u32) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| {
        let parent = t.current_ctx()?;
        Some(new_span(
            t,
            kind,
            name,
            node,
            parent.trace_id,
            parent.span_id,
            true,
        ))
    })
}

/// Like [`span`], but does not become the task's current context — for
/// leaf work whose guard outlives the caller's scope (packet pipelines)
/// or that never parents children.
pub fn leaf_span(kind: SpanKind, name: &'static str, node: u32) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| {
        let parent = t.current_ctx()?;
        Some(new_span(
            t,
            kind,
            name,
            node,
            parent.trace_id,
            parent.span_id,
            false,
        ))
    })
}

/// Start a child span under an explicit parent context (the remote side
/// of a wire hop), making it the current task's context.
pub fn span_with_parent(
    kind: SpanKind,
    name: &'static str,
    node: u32,
    parent: TraceCtx,
) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| {
        Some(new_span(
            t,
            kind,
            name,
            node,
            parent.trace_id,
            parent.span_id,
            true,
        ))
    })
}

/// Record an instant event under the current task's context.
pub fn event(kind: SpanKind, name: &'static str, node: u32, attrs: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        let parent = t.current_ctx()?;
        event_inner(t, kind, name, node, parent, attrs);
        Some(())
    });
}

/// Record an instant event under an explicit parent context (for code
/// running in helper tasks that carry no context of their own, e.g. the
/// retransmission watchdog).
pub fn event_with_parent(
    kind: SpanKind,
    name: &'static str,
    node: u32,
    parent: TraceCtx,
    attrs: &[(&'static str, u64)],
) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        event_inner(t, kind, name, node, parent, attrs);
        Some(())
    });
}

/// Record a standalone single-span trace with no parent — for autonomous
/// server-side activity (e.g. lease reclamation by the expiry sweeper)
/// that belongs to no client request. Requires sampling to be switched on
/// (`sample_every != 0`) but is not head-sampled: such events are rare
/// and always of interest when tracing at all.
pub fn root_event(kind: SpanKind, name: &'static str, node: u32, attrs: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    with_tracer(|t| {
        if t.sample_every.get() == 0 {
            return None;
        }
        let trace_id = t.fresh_id();
        event_inner(
            t,
            kind,
            name,
            node,
            TraceCtx {
                trace_id,
                span_id: 0,
            },
            attrs,
        );
        Some(())
    });
}

fn event_inner(
    t: &Rc<TracerInner>,
    kind: SpanKind,
    name: &'static str,
    node: u32,
    parent: TraceCtx,
    attrs: &[(&'static str, u64)],
) {
    let mut guard = new_span(t, kind, name, node, parent.trace_id, parent.span_id, false);
    for &(k, v) in attrs.iter().take(MAX_ATTRS) {
        guard.attr(k, v);
    }
    guard.end();
}

/// The current task's trace context, if traced (what goes on the wire).
pub fn current_ctx() -> Option<TraceCtx> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| t.current_ctx())
}

/// Make `ctx` the current task's context until the guard drops — manual
/// propagation into spawned helper tasks (fire-and-forget releases).
pub fn set_ctx(ctx: TraceCtx) -> Option<CtxGuard> {
    if !enabled() {
        return None;
    }
    with_tracer(|t| {
        let task = simcore::current_task();
        t.push_ctx(task, ctx);
        Some(CtxGuard {
            tracer: t.clone(),
            task,
            span_id: ctx.span_id,
        })
    })
}

/// Pops the context pushed by [`set_ctx`] on drop.
pub struct CtxGuard {
    tracer: Rc<TracerInner>,
    task: Option<TaskId>,
    span_id: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        self.tracer.pop_ctx(self.task, self.span_id);
    }
}
