//! # telemetry — deterministic sim-time observability
//!
//! The measurement plane of the DmRPC reproduction: distributed tracing,
//! a metrics registry, Chrome-trace export, and a per-RPC latency
//! breakdown — all **deterministic**. Span ids are drawn from a seeded
//! [`simcore::SimRng`], timestamps are virtual [`simcore::SimTime`], and
//! storage is a bounded per-node ring, so the same seed exports
//! byte-identical traces on every run and on any host.
//!
//! ## Shape
//!
//! * [`Tracer`] — the flight recorder. Install it on the current thread
//!   ([`Tracer::install`]); instrumentation hooks throughout the stack
//!   ([`start_trace`], [`span`], [`leaf_span`], [`event`]) then record
//!   into it. With no tracer installed (or a request unsampled) every
//!   hook is a single thread-local flag check — the simulation's event
//!   schedule, wire bytes, and poll counts are unchanged.
//! * [`TraceCtx`] — what crosses task and wire boundaries. The executor's
//!   task identity ([`simcore::current_task`]) keys per-task context
//!   stacks, so concurrent requests never contaminate each other's trees;
//!   `rpclib` carries the context in an optional header extension so the
//!   tree spans client → network → DM server → COW.
//! * [`Registry`] — stable hierarchical names over the stack's live
//!   [`simcore::Counter`]s/[`simcore::Histogram`]s, with snapshot/delta
//!   and cross-node histogram merging.
//! * [`chrome_trace_json`] — Perfetto-loadable export;
//!   [`analyze_trace`] — deepest-span-wins critical-path breakdown whose
//!   per-category sums equal end-to-end latency by construction.

#![warn(missing_docs)]

mod breakdown;
mod export;
mod registry;
mod slo;
mod span;
mod tracer;

pub use breakdown::{analyze_trace, average, roots, Breakdown};
pub use export::{chrome_trace_json, merge_node_names, merge_partition_records};
pub use registry::{Metric, Registry, Snapshot};
pub use slo::{SloBudget, SloReport};
pub use span::{Category, SpanKind, SpanRecord, TraceCtx, MAX_ATTRS};
pub use tracer::{
    current_ctx, enabled, event, event_with_parent, leaf_span, root_event, set_ctx, span,
    span_with_parent, start_trace, CtxGuard, InstallGuard, SpanGuard, Tracer, DEFAULT_RING_CAP,
};

impl Tracer {
    /// Export everything recorded so far as Chrome trace-event JSON (see
    /// [`chrome_trace_json`]).
    pub fn export_chrome_json(&self) -> String {
        chrome_trace_json(&self.records(), &self.node_names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use std::time::Duration;

    async fn sleep_ns(ns: u64) {
        simcore::sleep(Duration::from_nanos(ns)).await
    }

    #[test]
    fn hooks_are_inert_without_a_tracer() {
        assert!(!enabled());
        assert!(start_trace("r", 0).is_none());
        assert!(span(SpanKind::DmOp, "x", 0).is_none());
        assert!(current_ctx().is_none());
        event(SpanKind::Retry, "x", 0, &[]);
    }

    #[test]
    fn spans_nest_and_record() {
        let tracer = Tracer::new(7, 1);
        let _g = tracer.install();
        let sim = Sim::new();
        sim.block_on(async {
            let mut root = start_trace("req", 0).expect("sampled");
            root.attr("bytes", 4096);
            sleep_ns(10).await;
            {
                let call = span(SpanKind::ClientCall, "rpc.call", 0).expect("child");
                sleep_ns(20).await;
                let hop = leaf_span(SpanKind::NetHop, "net.hop", 1).expect("leaf");
                sleep_ns(30).await;
                hop.end();
                call.end();
            }
            sleep_ns(5).await;
            root.end();
        });
        let recs = tracer.records();
        assert_eq!(recs.len(), 3);
        let root = recs.iter().find(|r| r.kind == SpanKind::Request).unwrap();
        let call = recs
            .iter()
            .find(|r| r.kind == SpanKind::ClientCall)
            .unwrap();
        let hop = recs.iter().find(|r| r.kind == SpanKind::NetHop).unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(call.parent_id, root.span_id);
        assert_eq!(hop.parent_id, call.span_id, "leaf parents under the call");
        assert_eq!(root.trace_id, hop.trace_id);
        assert_eq!(root.dur_nanos(), 65);
        assert_eq!(call.dur_nanos(), 50);
        assert_eq!(root.attrs(), &[("bytes", 4096)]);
        assert_eq!(hop.node, 1);
    }

    #[test]
    fn contexts_are_task_local() {
        let tracer = Tracer::new(7, 1);
        let _g = tracer.install();
        let sim = Sim::new();
        sim.block_on(async {
            let root = start_trace("req", 0).expect("sampled");
            let ctx = root.ctx();
            // A freshly spawned task has no context of its own...
            let plain = simcore::spawn(async { current_ctx() });
            // ...until one is set explicitly.
            let seeded = simcore::spawn(async move {
                let _c = set_ctx(ctx);
                current_ctx()
            });
            simcore::yield_now().await;
            assert_eq!(plain.await, None);
            assert_eq!(seeded.await, Some(ctx));
            assert_eq!(current_ctx(), Some(ctx), "creator still holds its ctx");
        });
    }

    #[test]
    fn head_sampling_selects_one_in_n() {
        let tracer = Tracer::new(7, 3);
        let _g = tracer.install();
        let sim = Sim::new();
        let sampled = sim.block_on(async {
            let mut n = 0;
            for _ in 0..9 {
                if let Some(s) = start_trace("req", 0) {
                    n += 1;
                    s.end();
                }
            }
            n
        });
        assert_eq!(sampled, 3);
        assert_eq!(tracer.sampling_stats(), (9, 3));
        // Rate 0 disables sampling outright.
        tracer.set_sample_every(0);
        let sim = Sim::new();
        assert!(sim.block_on(async { start_trace("req", 0).is_none() }));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let tracer = Tracer::with_capacity(7, 1, 4);
        let _g = tracer.install();
        let sim = Sim::new();
        sim.block_on(async {
            for i in 0..10u64 {
                let mut s = start_trace("req", 0).expect("sampled");
                s.attr("i", i);
                sleep_ns(1).await;
                s.end();
            }
        });
        let recs = tracer.records();
        assert_eq!(recs.len(), 4, "bounded by ring capacity");
        let kept: Vec<u64> = recs.iter().map(|r| r.attrs()[0].1).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest spans overwritten");
    }

    #[test]
    fn export_is_valid_and_deterministic() {
        fn run() -> String {
            let tracer = Tracer::new(42, 1);
            tracer.set_node_name(0, "client");
            let _g = tracer.install();
            let sim = Sim::new();
            sim.block_on(async {
                let root = start_trace("req", 0).expect("sampled");
                sleep_ns(1500).await;
                let s = span(SpanKind::DmOp, "dm.read", 1).expect("child");
                sleep_ns(250).await;
                s.end();
                root.end();
            });
            tracer.export_chrome_json()
        }
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same bytes");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.ends_with("]}"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"process_name\""));
        assert!(a.contains("\"client\""));
        assert!(a.contains("\"ts\":1.500"), "ns mapped to µs: {a}");
        // Each span id referenced as a parent is defined in the export.
        assert!(a.contains("\"cat\":\"dm_op\""));
    }

    #[test]
    fn breakdown_attributes_every_nanosecond() {
        let tracer = Tracer::new(7, 1);
        let _g = tracer.install();
        let sim = Sim::new();
        sim.block_on(async {
            let root = start_trace("req", 0).expect("sampled");
            sleep_ns(100).await; // 100ns of root-only time → other
            {
                let call = span(SpanKind::ClientCall, "c", 0).expect("child");
                sleep_ns(40).await; // 40ns queueing
                {
                    let hop = leaf_span(SpanKind::NetHop, "h", 0).expect("leaf");
                    sleep_ns(60).await; // 60ns transport
                    hop.end();
                }
                sleep_ns(10).await; // 10ns queueing
                call.end();
            }
            root.end();
        });
        let recs = tracer.records();
        let root = roots(&recs)[0];
        let b = analyze_trace(&recs, root.trace_id).expect("root present");
        assert_eq!(b.total_ns, 210);
        assert_eq!(b.category_sum(), b.total_ns, "every instant attributed");
        assert_eq!(b.get(Category::Other), 100);
        assert_eq!(b.get(Category::Queueing), 50);
        assert_eq!(b.get(Category::Transport), 60);
    }

    #[test]
    fn partitioned_tracing_merges_byte_identically() {
        use simcore::par::{run_partitioned, ParConfig, PartitionBuilder};

        // Three partitions, each with its own tracer installed only for
        // its own window polls (wrap_windows), exchanging events in a
        // ring. The merged chrome export must be byte-identical no matter
        // how many threads ran the partitions.
        type TraceDump = (Vec<SpanRecord>, Vec<String>);

        fn run(threads: usize) -> String {
            let builders: Vec<PartitionBuilder<u64, TraceDump>> = (0..3u32)
                .map(|part| {
                    let b: PartitionBuilder<u64, TraceDump> = Box::new(move |ctx| {
                        let tracer = Tracer::new(100 + part as u64, 1);
                        tracer.set_node_name(part, format!("p{part}"));
                        {
                            let t = tracer.clone();
                            ctx.wrap_windows(move |w| {
                                let _g = t.install();
                                w();
                            });
                        }
                        ctx.on_deliver(move |v: u64| {
                            root_event(SpanKind::Retry, "xrecv", part, &[("v", v)]);
                        });
                        let sender = ctx.sender();
                        ctx.sim().spawn(async move {
                            // Stagger starts so span timestamps differ
                            // per partition.
                            simcore::sleep(Duration::from_nanos(part as u64 * 300)).await;
                            let root = start_trace("req", part).expect("sampled");
                            sleep_ns(100).await;
                            let s = span(SpanKind::DmOp, "work", part).expect("child");
                            sleep_ns(50).await;
                            s.end();
                            sender.send(
                                (part + 1) % 3,
                                simcore::now() + Duration::from_micros(2),
                                part as u64,
                            );
                            root.end();
                        });
                        Box::new(move || (tracer.records(), tracer.node_names()))
                    });
                    b
                })
                .collect();
            let out = run_partitioned(
                builders,
                ParConfig {
                    lookahead: Duration::from_micros(2),
                    threads,
                },
            );
            assert_eq!(out.xevents, 3);
            let (recs, names): (Vec<_>, Vec<_>) =
                out.partitions.into_iter().map(|p| p.result).unzip();
            chrome_trace_json(&merge_partition_records(recs), &merge_node_names(names))
        }
        let a = run(1);
        assert_eq!(a, run(2), "2 threads export identical bytes");
        assert_eq!(a, run(3), "3 threads export identical bytes");
        assert!(a.contains("\"xrecv\""), "cross-partition events recorded");
        assert!(a.contains("\"p0\"") && a.contains("\"p2\""), "names merged");
    }

    #[test]
    fn registry_snapshot_delta_and_merge() {
        use simcore::{Counter, Histogram};
        let reg = Registry::new();
        let c = Counter::new();
        reg.register_counter("node.0.rpc.calls", &c);
        let h0 = Histogram::new();
        let h1 = Histogram::new();
        reg.register_histogram("node.0.rpc.handler_ns", &h0);
        reg.register_histogram("node.1.rpc.handler_ns", &h1);
        reg.register_gauge("net.delivered", || 17);

        c.add(5);
        h0.record(1000);
        h1.record(3000);
        let s1 = reg.snapshot();
        assert_eq!(s1.get("node.0.rpc.calls"), Some(5));
        assert_eq!(s1.get("net.delivered"), Some(17));
        assert_eq!(s1.get("node.0.rpc.handler_ns.count"), Some(1));

        c.add(2);
        h0.record(2000);
        let d = reg.snapshot().delta(&s1);
        assert_eq!(d.get("node.0.rpc.calls"), Some(2));
        assert_eq!(d.get("node.0.rpc.handler_ns.count"), Some(1));

        let merged = reg.merged_histogram("rpc.handler_ns");
        assert_eq!(merged.count(), 3, "cross-node aggregation");
        assert_eq!(merged.max(), 3000);

        let dump = reg.dump();
        assert!(dump.contains("net.delivered 17"));
        let lines: Vec<&str> = dump.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "dump is in stable sorted order");
    }
}
