//! SLO evaluation over latency histograms (paper §VI scale experiments).
//!
//! An SLO here is a latency **budget** at one or more quantiles plus a
//! goodput floor. [`SloReport::evaluate`] extracts p50/p99/p999 and the
//! within-budget completion rate from a [`simcore::stats::Histogram`], so
//! the scale-factor sweep (`bench::slo_scale`) can ask "what is the
//! highest offered rate at which p99 stays under budget and ≥99% of
//! issued requests complete within it?" without re-deriving quantile
//! math at every call site.
//!
//! The within-budget count uses [`Histogram::count_below`], which
//! interpolates inside the terminal bucket exactly like `quantile`
//! does — the two views are consistent to bucket resolution (~1.6%).

use std::time::Duration;

use simcore::stats::Histogram;

/// A latency budget against which a workload is judged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloBudget {
    /// The latency budget applied at [`SloBudget::quantile`].
    pub budget: Duration,
    /// Which quantile must sit under the budget (e.g. `0.99`).
    pub quantile: f64,
    /// Minimum fraction of issued requests that must complete within the
    /// budget (goodput floor, e.g. `0.99`).
    pub min_goodput: f64,
}

impl SloBudget {
    /// A p99 budget with a 99% within-budget goodput floor — the shape
    /// used throughout the scale-factor sweep.
    pub fn p99(budget: Duration) -> SloBudget {
        SloBudget {
            budget,
            quantile: 0.99,
            min_goodput: 0.99,
        }
    }
}

/// The verdict of evaluating one measurement window against a budget.
#[derive(Clone, Copy, Debug)]
pub struct SloReport {
    /// p50 latency in nanoseconds.
    pub p50_ns: u64,
    /// p99 latency in nanoseconds.
    pub p99_ns: u64,
    /// p99.9 latency in nanoseconds.
    pub p999_ns: u64,
    /// Recorded completions (histogram population).
    pub completed: u64,
    /// Completions whose latency fell within the budget.
    pub within_budget: u64,
    /// `within_budget / issued` — the SLO goodput fraction. `issued`
    /// counts rejected and errored requests too, so shedding lowers this
    /// even though shed requests never enter the histogram.
    pub goodput: f64,
    /// Latency at the budget quantile, in nanoseconds.
    pub at_quantile_ns: u64,
    /// Whether both the quantile budget and the goodput floor held.
    pub met: bool,
}

impl SloReport {
    /// Evaluate `latency` (a histogram of completion latencies) against
    /// `slo`, where `issued` is the total number of requests offered in
    /// the window (completed + rejected + errored).
    pub fn evaluate(latency: &Histogram, issued: u64, slo: SloBudget) -> SloReport {
        let budget_ns = slo.budget.as_nanos() as u64;
        let completed = latency.count();
        let within_budget = latency.count_below(budget_ns);
        let goodput = if issued == 0 {
            1.0
        } else {
            within_budget as f64 / issued as f64
        };
        let at_quantile_ns = latency.quantile(slo.quantile);
        SloReport {
            p50_ns: latency.quantile(0.50),
            p99_ns: latency.quantile(0.99),
            p999_ns: latency.quantile(0.999),
            completed,
            within_budget,
            goodput,
            at_quantile_ns,
            met: at_quantile_ns <= budget_ns && goodput >= slo.min_goodput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_workload_meets_slo() {
        let h = Histogram::new();
        for _ in 0..990 {
            h.record(10_000); // 10µs
        }
        for _ in 0..10 {
            h.record(40_000); // 40µs — still under budget
        }
        let r = SloReport::evaluate(&h, 1000, SloBudget::p99(Duration::from_micros(50)));
        assert!(r.met, "{r:?}");
        assert!(r.goodput > 0.99, "{r:?}");
        assert_eq!(r.completed, 1000);
    }

    #[test]
    fn blown_tail_fails_quantile_check() {
        let h = Histogram::new();
        for _ in 0..950 {
            h.record(10_000);
        }
        for _ in 0..50 {
            h.record(5_000_000); // 5ms tail: p99 lands in the tail
        }
        let r = SloReport::evaluate(&h, 1000, SloBudget::p99(Duration::from_micros(50)));
        assert!(!r.met, "{r:?}");
        assert!(r.p99_ns > 1_000_000, "{r:?}");
    }

    #[test]
    fn rejections_count_against_goodput() {
        let h = Histogram::new();
        for _ in 0..500 {
            h.record(10_000);
        }
        // 500 completions within budget out of 1000 issued: quantile fine,
        // goodput floor blown.
        let r = SloReport::evaluate(&h, 1000, SloBudget::p99(Duration::from_micros(50)));
        assert!(!r.met, "{r:?}");
        assert!((r.goodput - 0.5).abs() < 0.02, "{r:?}");
    }

    #[test]
    fn empty_window_trivially_meets() {
        let h = Histogram::new();
        let r = SloReport::evaluate(&h, 0, SloBudget::p99(Duration::from_micros(50)));
        assert!(r.met, "{r:?}");
        assert_eq!(r.goodput, 1.0);
    }
}
