//! Critical-path latency breakdown.
//!
//! Attributes every instant of a traced request's end-to-end latency to
//! exactly one [`Category`] by a *deepest-span-wins* timeline sweep: the
//! root covers the whole window, and at each instant the most deeply
//! nested span covering it claims the time. Because every instant has
//! exactly one winner, the per-category sums equal the end-to-end latency
//! by construction — the property the breakdown CSV's self-check relies
//! on.

use std::collections::HashMap;

use crate::span::{Category, SpanRecord};

/// Per-category attribution of one (or several averaged) traced requests.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// End-to-end nanoseconds (root span duration).
    pub total_ns: u64,
    /// Nanoseconds per category, indexed per [`Category::ALL`].
    pub by_category: [u64; Category::COUNT],
}

impl Breakdown {
    /// Sum of all category buckets (equals `total_ns` for a single trace).
    pub fn category_sum(&self) -> u64 {
        self.by_category.iter().sum()
    }

    /// Nanoseconds attributed to `c`.
    pub fn get(&self, c: Category) -> u64 {
        self.by_category[c.index()]
    }
}

/// Trace roots (spans with no parent) among `records`.
pub fn roots(records: &[SpanRecord]) -> Vec<&SpanRecord> {
    records.iter().filter(|r| r.parent_id == 0).collect()
}

/// Analyze the trace identified by `trace_id`. Returns `None` when the
/// records contain no root span for it (e.g. it was overwritten in the
/// flight-recorder ring).
pub fn analyze_trace(records: &[SpanRecord], trace_id: u64) -> Option<Breakdown> {
    let spans: Vec<&SpanRecord> = records.iter().filter(|r| r.trace_id == trace_id).collect();
    let root = *spans.iter().find(|r| r.parent_id == 0)?;
    let (lo, hi) = (root.start.nanos(), root.end.nanos());

    // Depth of each span (root = 0) via memoized parent-chain walks.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|r| (r.span_id, *r)).collect();
    let mut depth: HashMap<u64, u32> = HashMap::new();
    depth.insert(root.span_id, 0);
    for r in &spans {
        depth_of(r.span_id, &by_id, &mut depth);
    }

    // Clip spans to the root window and drop zero-width events.
    struct Clipped {
        start: u64,
        end: u64,
        depth: u32,
        span_id: u64,
        cat: Category,
    }
    let mut clipped: Vec<Clipped> = Vec::with_capacity(spans.len());
    for r in &spans {
        let s = r.start.nanos().clamp(lo, hi);
        let e = r.end.nanos().clamp(lo, hi);
        if e > s {
            clipped.push(Clipped {
                start: s,
                end: e,
                depth: depth[&r.span_id],
                span_id: r.span_id,
                cat: r.kind.category(),
            });
        }
    }

    // Timeline sweep over the span boundaries.
    let mut points: Vec<u64> = clipped.iter().flat_map(|c| [c.start, c.end]).collect();
    points.sort_unstable();
    points.dedup();
    let mut out = Breakdown {
        total_ns: hi - lo,
        by_category: [0; Category::COUNT],
    };
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Deepest covering span wins; ties broken by latest start, then
        // span id, so attribution is deterministic.
        let winner = clipped
            .iter()
            .filter(|c| c.start <= a && c.end >= b)
            .max_by_key(|c| (c.depth, c.start, c.span_id));
        if let Some(win) = winner {
            out.by_category[win.cat.index()] += b - a;
        }
    }
    Some(out)
}

fn depth_of(id: u64, by_id: &HashMap<u64, &SpanRecord>, memo: &mut HashMap<u64, u32>) -> u32 {
    if let Some(&d) = memo.get(&id) {
        return d;
    }
    // An orphan (parent not in the record set, e.g. overwritten) counts as
    // depth 1 so it still out-ranks the root. The chain is acyclic (ids
    // are unique draws), so recursion terminates.
    let d = match by_id.get(&id) {
        Some(r) if r.parent_id != 0 && by_id.contains_key(&r.parent_id) => {
            1 + depth_of(r.parent_id, by_id, memo)
        }
        Some(r) if r.parent_id != 0 => 1,
        _ => 0,
    };
    memo.insert(id, d);
    d
}

/// Average several breakdowns (integer division per bucket; used for the
/// per-system rows of the breakdown CSV).
pub fn average(items: &[Breakdown]) -> Breakdown {
    if items.is_empty() {
        return Breakdown::default();
    }
    let n = items.len() as u64;
    let mut out = Breakdown {
        total_ns: items.iter().map(|b| b.total_ns).sum::<u64>() / n,
        ..Breakdown::default()
    };
    for i in 0..Category::COUNT {
        out.by_category[i] = items.iter().map(|b| b.by_category[i]).sum::<u64>() / n;
    }
    out
}
