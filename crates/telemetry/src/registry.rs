//! The metrics registry: stable hierarchical names over the stack's
//! existing counters and histograms.
//!
//! Counters and histograms are `Rc`-shared, so registering a clone wires
//! the live metric — the registry reads current values at snapshot time.
//! Sources that only expose getter methods register as gauges (closures).
//! Names are dot-separated paths (`dmnet.cache.hits`,
//! `node.3.rpc.retransmits`); a `BTreeMap` keeps every dump and snapshot
//! in one stable order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use simcore::{Counter, Histogram};

/// A registered metric.
#[derive(Clone)]
pub enum Metric {
    /// A live shared counter.
    Counter(Counter),
    /// A live shared histogram.
    Histogram(Histogram),
    /// A derived value read through a closure at snapshot time.
    Gauge(Rc<dyn Fn() -> u64>),
}

/// Per-node (or per-cluster) metrics registry.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Rc<std::cell::RefCell<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a live counter under `name` (replaces any previous entry).
    pub fn register_counter(&self, name: impl Into<String>, c: &Counter) {
        self.metrics
            .borrow_mut()
            .insert(name.into(), Metric::Counter(c.clone()));
    }

    /// Register a live histogram under `name`.
    pub fn register_histogram(&self, name: impl Into<String>, h: &Histogram) {
        self.metrics
            .borrow_mut()
            .insert(name.into(), Metric::Histogram(h.clone()));
    }

    /// Register a derived gauge under `name`.
    pub fn register_gauge(&self, name: impl Into<String>, f: impl Fn() -> u64 + 'static) {
        self.metrics
            .borrow_mut()
            .insert(name.into(), Metric::Gauge(Rc::new(f)));
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.borrow().keys().cloned().collect()
    }

    /// Read one metric's scalar value (histograms report their count).
    pub fn value(&self, name: &str) -> Option<u64> {
        self.metrics.borrow().get(name).map(|m| match m {
            Metric::Counter(c) => c.get(),
            Metric::Histogram(h) => h.count(),
            Metric::Gauge(f) => f(),
        })
    }

    /// Merge every registered histogram whose name ends with `suffix`
    /// into one distribution — cross-node percentile aggregation (e.g.
    /// suffix `"rpc.handler_ns"` over `node.<i>.rpc.handler_ns`).
    pub fn merged_histogram(&self, suffix: &str) -> Histogram {
        let merged = Histogram::new();
        for (name, m) in self.metrics.borrow().iter() {
            if let Metric::Histogram(h) = m {
                if name.ends_with(suffix) {
                    merged.merge(h);
                }
            }
        }
        merged
    }

    /// Capture all current values. Histograms expand to `.count`, `.p50`,
    /// `.p99`, and `.max` keys.
    pub fn snapshot(&self) -> Snapshot {
        let mut values = BTreeMap::new();
        for (name, m) in self.metrics.borrow().iter() {
            match m {
                Metric::Counter(c) => {
                    values.insert(name.clone(), c.get());
                }
                Metric::Gauge(f) => {
                    values.insert(name.clone(), f());
                }
                Metric::Histogram(h) => {
                    values.insert(format!("{name}.count"), h.count());
                    values.insert(format!("{name}.p50"), h.p50());
                    values.insert(format!("{name}.p99"), h.p99());
                    values.insert(format!("{name}.max"), h.max());
                }
            }
        }
        Snapshot { values }
    }

    /// One-line-per-metric dump of a fresh snapshot (the shared dump path
    /// for bench binaries).
    pub fn dump(&self) -> String {
        self.snapshot().dump()
    }
}

/// Point-in-time metric values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Value by (expanded) name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// All `(name, value)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Per-key saturating difference `self - earlier` (keys only in one
    /// snapshot keep their lone value).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut values = self.values.clone();
        for (k, v) in values.iter_mut() {
            *v = v.saturating_sub(earlier.get(k).unwrap_or(0));
        }
        for (k, &v) in &earlier.values {
            values.entry(k.clone()).or_insert(v);
        }
        Snapshot { values }
    }

    /// `name value` lines, sorted by name.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            let _ = writeln!(out, "{k} {v}");
        }
        out
    }
}
