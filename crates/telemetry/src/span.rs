//! Span records and trace identifiers.
//!
//! A trace is a causal tree of spans identified by a shared `trace_id`;
//! each span carries its own `span_id` and its parent's (0 for the root).
//! Records are fixed-size `Copy` structs so the flight recorder can store
//! them in a preallocated ring with no per-span allocation.

use simcore::SimTime;

/// Trace context: the pair carried across task and wire boundaries.
///
/// `span_id` names the span that is the *parent* of whatever work the
/// context is handed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceCtx {
    /// Identifier shared by every span of one causal tree.
    pub trace_id: u64,
    /// The current (parenting) span.
    pub span_id: u64,
}

/// What a span measures. The kind determines the latency-breakdown
/// [`Category`] its exclusive time is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// Root of one end-to-end application request.
    Request,
    /// Client side of one RPC call, from first transmit to response.
    ClientCall,
    /// (De)serialization / marshalling CPU and memory charges.
    Serialize,
    /// One packet's traversal of the simulated fabric (NIC → switch → NIC).
    NetHop,
    /// Server-side execution of one RPC handler.
    ServerHandle,
    /// One disaggregated-memory control operation (alloc/map/read/...).
    DmOp,
    /// Copy-on-write page duplication.
    Cow,
    /// Application-level memory-model charge (streaming/aggregation).
    MemCharge,
    /// Instant: a client-side retransmission fired.
    Retry,
    /// Instant: a DM server reclaimed an expired lease's pins.
    LeaseReclaim,
}

/// Latency-breakdown categories (the paper-§V decomposition).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Marshalling and per-message CPU.
    Serialize,
    /// Credit waits, pacing, response waits not covered by deeper spans.
    Queueing,
    /// Wire time: NIC serialization + switch latency.
    Transport,
    /// DM control-plane operations.
    DmControl,
    /// Copy-on-write page copies.
    CowCopy,
    /// Memory-model charges (streaming, aggregation).
    Mem,
    /// Application logic and anything not otherwise attributed.
    Other,
}

impl Category {
    /// All categories, in stable report order.
    pub const ALL: [Category; 7] = [
        Category::Serialize,
        Category::Queueing,
        Category::Transport,
        Category::DmControl,
        Category::CowCopy,
        Category::Mem,
        Category::Other,
    ];

    /// Number of categories.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case label (CSV column name).
    pub fn label(self) -> &'static str {
        match self {
            Category::Serialize => "serialize",
            Category::Queueing => "queueing",
            Category::Transport => "transport",
            Category::DmControl => "dm_control",
            Category::CowCopy => "cow_copy",
            Category::Mem => "mem",
            Category::Other => "other",
        }
    }

    /// Index into [`Category::ALL`]-ordered arrays.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

impl SpanKind {
    /// The category this kind's exclusive time is attributed to.
    pub fn category(self) -> Category {
        match self {
            SpanKind::Request => Category::Other,
            SpanKind::ClientCall => Category::Queueing,
            SpanKind::Serialize => Category::Serialize,
            SpanKind::NetHop => Category::Transport,
            SpanKind::ServerHandle => Category::Other,
            SpanKind::DmOp => Category::DmControl,
            SpanKind::Cow => Category::CowCopy,
            SpanKind::MemCharge => Category::Mem,
            SpanKind::Retry => Category::Queueing,
            SpanKind::LeaseReclaim => Category::DmControl,
        }
    }

    /// Stable label (the Chrome-trace `cat` field).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::ClientCall => "client_call",
            SpanKind::Serialize => "serialize",
            SpanKind::NetHop => "net_hop",
            SpanKind::ServerHandle => "server_handle",
            SpanKind::DmOp => "dm_op",
            SpanKind::Cow => "cow",
            SpanKind::MemCharge => "mem_charge",
            SpanKind::Retry => "retry",
            SpanKind::LeaseReclaim => "lease_reclaim",
        }
    }
}

/// Maximum typed attributes per span (fixed so records stay `Copy`).
pub const MAX_ATTRS: usize = 6;

/// One finished span, as stored in the flight recorder.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Causal-tree identifier.
    pub trace_id: u64,
    /// This span.
    pub span_id: u64,
    /// Parent span, 0 for a trace root.
    pub parent_id: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Human-readable operation name (`"rpc.call"`, ...).
    pub name: &'static str,
    /// Node the span executed on.
    pub node: u32,
    /// Start instant (virtual time).
    pub start: SimTime,
    /// End instant; equals `start` for instant events.
    pub end: SimTime,
    /// Typed attributes; only the first `n_attrs` entries are valid.
    pub attrs: [(&'static str, u64); MAX_ATTRS],
    /// Number of valid attributes.
    pub n_attrs: u8,
}

impl SpanRecord {
    /// Duration in nanoseconds.
    pub fn dur_nanos(&self) -> u64 {
        self.end.nanos().saturating_sub(self.start.nanos())
    }

    /// The valid attribute slice.
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..self.n_attrs as usize]
    }
}
