//! Fig. 8 — comparison with Ray/Spark: throughput (a) and latency (b)
//! versus the fraction of the shared 32 KB block the callee writes.
//! Single-threaded, as in the paper.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::sharebench::{build_sharebench, build_store_sharebench, StoreKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

use crate::report::{f2, Table};

/// Block size (paper: 32 KB raw data blocks).
pub const BLOCK: usize = 32 * 1024;

/// Write percentages swept.
pub const WRITE_PCTS: [u8; 6] = [0, 20, 40, 60, 80, 100];

/// One DmRPC point: (throughput krps, avg latency us).
pub fn run_dm_point(kind: SystemKind, write_pct: u8, block: usize) -> (f64, f64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 1, ClusterConfig::default(), 8);
        let app = Rc::new(build_sharebench(&cluster).await);
        let data = Bytes::from(vec![1u8; block]);
        app.request(&data, write_pct).await.expect("warmup");
        let m = run_closed_loop(
            1, // single thread, as in the paper
            Duration::from_micros(100),
            Duration::from_millis(5),
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let data = data.clone();
                async move { app.request(&data, write_pct).await }
            }),
        )
        .await;
        (m.throughput_rps() / 1e3, m.avg_latency_us())
    })
}

/// One store point: (throughput krps, avg latency us).
pub fn run_store_point(kind: StoreKind, write_pct: u8, block: usize) -> (f64, f64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 8);
        let app = Rc::new(build_store_sharebench(&cluster, kind).await);
        let data = Bytes::from(vec![1u8; block]);
        app.request(&data, write_pct).await.expect("warmup");
        let m = run_closed_loop(
            1,
            Duration::from_micros(100),
            Duration::from_millis(25), // store ops are ~1 ms each
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let data = data.clone();
                async move { app.request(&data, write_pct).await }
            }),
        )
        .await;
        (m.throughput_rps() / 1e3, m.avg_latency_us())
    })
}

/// Run the experiment and emit `results/fig8_datastore.csv`.
pub fn run() {
    let mut t = Table::new(
        "fig8_datastore",
        &["write_pct", "system", "throughput_krps", "avg_latency_us"],
    );
    for pct in WRITE_PCTS {
        for kind in [SystemKind::DmNet, SystemKind::DmCxl] {
            let (tput, lat) = run_dm_point(kind, pct, BLOCK);
            t.row(&[&pct, &kind.label(), &f2(tput), &f2(lat)]);
        }
        for kind in [StoreKind::Ray, StoreKind::Spark] {
            let (tput, lat) = run_store_point(kind, pct, BLOCK);
            t.row(&[&pct, &kind.label(), &f2(tput), &f2(lat)]);
        }
    }
    t.finish();
}
