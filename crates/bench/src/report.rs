//! Result tables: aligned console output plus CSV files under `results/`.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// A simple result table.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table called `name` (also the CSV file stem) with columns.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Print to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.name);
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        line(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<String>>(),
        );
        for r in &self.rows {
            line(r);
        }
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }

    /// Print and write, logging the CSV path.
    pub fn finish(&self) {
        self.print();
        match self.write_csv() {
            Ok(p) => println!("  -> {}", p.display()),
            Err(e) => eprintln!("  (csv write failed: {e})"),
        }
    }
}

/// The `results/` directory (repo root when run via cargo, else cwd).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Human-friendly size label (4096 -> "4K").
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1024 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Render grouped horizontal bars: one group per label, one bar per series.
/// Bars scale to the global maximum. A lightweight stand-in for the paper's
/// figures when eyeballing results in a terminal.
pub fn render_bars(title: &str, labels: &[String], series: &[(&str, Vec<f64>)]) {
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    const WIDTH: usize = 46;
    println!(
        "
-- {title} --"
    );
    for (i, label) in labels.iter().enumerate() {
        for (j, (name, vals)) in series.iter().enumerate() {
            let v = vals.get(i).copied().unwrap_or(0.0);
            let n = ((v / max) * WIDTH as f64).round() as usize;
            let group = if j == 0 { label.as_str() } else { "" };
            println!(
                "  {group:>label_w$}  {name:<name_w$} |{}{} {v:.1}",
                "#".repeat(n),
                " ".repeat(WIDTH - n.min(WIDTH)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new("unit_test_table", &["a", "bbbb"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &f2(1.5)]);
        t.print();
        let p = t.write_csv().unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.starts_with("a,bbbb\n1,x\n22,1.50\n"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn bars_render_without_panicking() {
        render_bars(
            "demo",
            &["4K".into(), "8K".into()],
            &[("eRPC", vec![10.0, 20.0]), ("DmRPC", vec![30.0, 40.0])],
        );
        // Degenerate inputs.
        render_bars("empty", &[], &[]);
        render_bars("zeros", &["x".into()], &[("s", vec![0.0])]);
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(512), "512B");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(1 << 20), "1M");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a"]);
        t.row(&[&1, &2]);
    }
}
