//! Chaos harness (DESIGN.md §8): seed-swept fault injection over the
//! paper's workloads, with global invariant checks after every run.
//!
//! Each case builds a fresh simulation, runs one workload under one fault
//! class driven by a deterministic schedule, then heals the fabric and
//! verifies:
//!
//! * **refcount conservation** — every shard's `check_invariants` holds;
//! * **no page leaks** — once every client process is gone (crashed, with
//!   its lease expired), the free list returns to the full pool capacity;
//! * **COW isolation** — a shared ref always reads its original bytes, no
//!   matter how many faulted writers COW-diverge their own mappings;
//! * **typed completion** — every request either completes or returns a
//!   typed error (a hang would deadlock `block_on`, failing the run);
//! * **determinism** — the same seed and fault class reproduce the same
//!   virtual-time fingerprint, bit for bit;
//! * **crash durability** — under the server-crash-recovery class every
//!   crash heals via `restart_from_log` and the rebuilt memory plane must
//!   be digest-identical to the acknowledged pre-crash state. Every
//!   acknowledged `put_ref` whose owner's lease survived must read back
//!   byte-exact; every ref of a lease-reclaimed owner must be fully
//!   released (zero lost acknowledged puts, zero resurrected frees —
//!   DESIGN.md §12).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social_scaled;
use apps::workload::{run_closed_loop, run_open_loop_classified};
use bytes::Bytes;
use dmnet::{CacheConfig, DmNetClient, DmServerConfig};
use dmrpc::DmHandle;
use loadgen::Population;
use memsim::ModelParams;
use rpclib::{RpcBuilder, RpcConfig};
use simcore::{Sim, SimRng};
use simnet::{FabricConfig, GilbertElliott, Network, NicConfig, NodeId};

/// The fault classes swept by the harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Gilbert–Elliott bursty loss on random links.
    BurstyLoss,
    /// Transient partitions between random node pairs.
    Partition,
    /// Packet duplication + reordering on random links.
    DupReorder,
    /// DM-server crash/restart windows plus one client fail-stop
    /// (exercises lease-based reclamation). State survives the crash
    /// (fail-stop with intact memory).
    ServerCrash,
    /// DM-server crash/recovery windows against the durable tier
    /// (DESIGN.md §12): servers run with the write-ahead log on, every
    /// crash is healed by `restart_from_log`, and the driver asserts the
    /// rebuilt memory plane is digest-identical to the pre-recovery state
    /// (zero lost acknowledged ops, zero resurrected frees).
    ServerCrashRecovery,
}

impl FaultClass {
    /// All fault classes, in sweep order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::BurstyLoss,
        FaultClass::Partition,
        FaultClass::DupReorder,
        FaultClass::ServerCrash,
        FaultClass::ServerCrashRecovery,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::BurstyLoss => "bursty-loss",
            FaultClass::Partition => "partition",
            FaultClass::DupReorder => "dup-reorder",
            FaultClass::ServerCrash => "server-crash",
            FaultClass::ServerCrashRecovery => "server-crash-recovery",
        }
    }

    /// Whether this class crashes DM servers (both crash classes share
    /// the victim-client and reclamation checks).
    pub fn crashes_servers(&self) -> bool {
        matches!(
            self,
            FaultClass::ServerCrash | FaultClass::ServerCrashRecovery
        )
    }
}

/// Outcome of one chaos case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Requests that completed successfully inside the window.
    pub completed: u64,
    /// Requests that returned a typed error inside the window.
    pub errors: u64,
    /// Virtual end time of the run, ns.
    pub end_ns: u64,
    /// Executor poll count (schedule fingerprint).
    pub polls: u64,
    /// Order-sensitive checksum over successful payload reads.
    pub checksum: u64,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl CaseResult {
    /// The bit-for-bit reproducibility fingerprint.
    pub fn fingerprint(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.polls,
            self.end_ns,
            self.completed,
            self.errors,
            self.checksum,
        )
    }
}

/// RPC tuning for chaos runs: short RTOs and a hard retry budget so every
/// faulted request fails in bounded virtual time instead of hanging.
pub fn chaos_rpc_config() -> RpcConfig {
    RpcConfig {
        rto: Duration::from_micros(40),
        rto_per_packet: Duration::from_micros(10),
        rto_max: Duration::from_micros(320),
        max_retries: 8,
        retry_jitter: 0.1,
        retry_budget: Some(Duration::from_micros(600)),
        ..RpcConfig::default()
    }
}

/// Lease TTL used by chaos runs (short, so reclamation happens within the
/// drain phase).
const LEASE_TTL: Duration = Duration::from_micros(200);

/// Shared fault-schedule driver: toggles faults between random pairs from
/// `links` until `stop` is set, entirely driven by `rng`. `crash` is the
/// set of DM servers crashed by the server-crash classes; when empty,
/// those classes degrade to partition windows (a fail-stop node is
/// indistinguishable from a partitioned one). For
/// [`FaultClass::ServerCrashRecovery`] every crash heals through
/// `restart_from_log` and the rebuilt memory plane must be digest-equal
/// to the pre-recovery state; mismatches land in `violations`.
fn spawn_fault_driver(
    net: Network,
    links: Vec<(NodeId, NodeId)>,
    crash: Vec<Rc<dmnet::DmServer>>,
    fault: FaultClass,
    rng: SimRng,
    stop: Rc<Cell<bool>>,
    violations: Rc<RefCell<Vec<String>>>,
) {
    assert!(!links.is_empty(), "fault driver needs at least one link");
    simcore::spawn(async move {
        loop {
            let window = Duration::from_nanos(rng.gen_range_in(60_000, 250_000));
            let (a, b) = links[rng.gen_range(links.len() as u64) as usize];
            match fault {
                FaultClass::BurstyLoss => {
                    let ge = GilbertElliott::bursty();
                    net.set_link_gilbert(a, b, Some(ge));
                    net.set_link_gilbert(b, a, Some(ge));
                    simcore::sleep(window).await;
                    net.clear_link_faults(a, b);
                    net.clear_link_faults(b, a);
                }
                FaultClass::Partition => {
                    net.partition_for(a, b, window);
                    simcore::sleep(window).await;
                }
                FaultClass::DupReorder => {
                    net.set_link_duplicate(a, b, 0.3);
                    net.set_link_reorder(a, b, 0.3, Duration::from_micros(30));
                    net.set_link_duplicate(b, a, 0.3);
                    net.set_link_reorder(b, a, 0.3, Duration::from_micros(30));
                    simcore::sleep(window).await;
                    net.clear_link_faults(a, b);
                    net.clear_link_faults(b, a);
                }
                FaultClass::ServerCrash | FaultClass::ServerCrashRecovery => {
                    if crash.is_empty() {
                        net.partition_for(a, b, window);
                        simcore::sleep(window).await;
                    } else {
                        let s = &crash[rng.gen_range(crash.len() as u64) as usize];
                        s.crash();
                        simcore::sleep(window).await;
                        if fault == FaultClass::ServerCrashRecovery {
                            // The crashed memory is intact (fail-stop), so
                            // its digest is the recovery oracle: replaying
                            // the log must rebuild exactly the acknowledged
                            // pre-crash state.
                            let pre = s.pages_digest();
                            let report = s.restart_from_log().await;
                            if report.torn_tail {
                                violations
                                    .borrow_mut()
                                    .push("recovery: torn tail in an uncorrupted log".into());
                            }
                            let post = s.pages_digest();
                            if post != pre {
                                violations.borrow_mut().push(format!(
                                    "recovery: digest {post:#018x} != pre-crash {pre:#018x} \
                                     ({} records replayed)",
                                    report.records_replayed
                                ));
                            }
                        } else {
                            s.restart();
                        }
                    }
                }
            }
            if stop.get() {
                return;
            }
            let gap = Duration::from_nanos(rng.gen_range_in(40_000, 160_000));
            simcore::sleep(gap).await;
            if stop.get() {
                return;
            }
        }
    });
}

/// Fig. 5 chain workload under one fault class. For `DmNet`, leases are on
/// and the teardown crashes every client, then verifies the sweeper returns
/// every page to the free list.
pub fn run_chain_case(kind: SystemKind, fault: FaultClass, seed: u64) -> CaseResult {
    let sim = Sim::new();
    let (completed, errors, checksum, violations) = sim.block_on(async move {
        // Durability is set explicitly per fault class (not inherited from
        // `DM_DURABLE`) so chaos fingerprints never depend on the
        // environment: only the recovery class runs with the WAL on.
        let config = ClusterConfig {
            rpc: chaos_rpc_config(),
            lease_ttl: Some(LEASE_TTL),
            dm_capacity_pages: 4096,
            dm_durability: (fault == FaultClass::ServerCrashRecovery)
                .then(dmnet::WalConfig::zero_cost),
            // Fine-grained coherence forced on (DESIGN.md §15): every fault
            // window also races targeted invalidation pushes, read leases
            // and the bounded holder directory.
            dm_client_cache: CacheConfig::fine_grained(),
            ..Default::default()
        };
        let cluster = Cluster::new(kind, 2, config, seed);
        let app = Rc::new(build_chain(&cluster, 3).await);
        let payload = Bytes::from(vec![7u8; 4096]);
        let want: u64 = payload.iter().map(|&b| b as u64).sum();
        app.request(&payload).await.expect("fault-free warmup");

        // Every node pair is a fault candidate: services, the client, and
        // (for DmNet) the DM servers.
        let mut nodes: Vec<NodeId> = cluster.servers().iter().map(|s| s.id).collect();
        nodes.extend(cluster.dm_servers.iter().map(|s| s.addr().node));
        let links: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .flat_map(|&a| nodes.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .collect();
        let stop = Rc::new(Cell::new(false));
        let checksum = Rc::new(Cell::new(0u64));
        let violations = Rc::new(RefCell::new(Vec::new()));
        spawn_fault_driver(
            cluster.net.clone(),
            links,
            cluster.dm_servers.clone(),
            fault,
            SimRng::new(seed ^ 0xFA11),
            stop.clone(),
            violations.clone(),
        );
        let m = {
            let app = app.clone();
            let checksum = checksum.clone();
            let violations = violations.clone();
            run_closed_loop(
                8,
                Duration::from_micros(100),
                Duration::from_micros(1200),
                Rc::new(move |_w, _i| {
                    let app = app.clone();
                    let payload = payload.clone();
                    let checksum = checksum.clone();
                    let violations = violations.clone();
                    async move {
                        let sum = app.request(&payload).await?;
                        if sum != want {
                            violations
                                .borrow_mut()
                                .push(format!("chain checksum {sum} != {want}"));
                        }
                        checksum.set(checksum.get().wrapping_mul(31).wrapping_add(sum));
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await
        };

        // Heal and drain: surviving retransmissions and async releases
        // finish inside the retry budget.
        stop.set(true);
        cluster.net.clear_faults();
        for s in &cluster.dm_servers {
            s.restart();
        }
        simcore::sleep(Duration::from_millis(1)).await;

        let mut violations = violations.borrow().clone();
        if kind == SystemKind::DmNet {
            for s in &cluster.dm_servers {
                s.check_invariants_all();
            }
            // Fail-stop every client process; once the leases expire the
            // sweeper must return every page to the free list.
            for ep in cluster.endpoints() {
                if let Some(DmHandle::Net(c)) = ep.dm() {
                    c.simulate_crash();
                }
            }
            simcore::sleep(3 * LEASE_TTL).await;
            for s in &cluster.dm_servers {
                s.sweep_expired_leases();
                s.check_invariants_all();
                if s.free_pages_total() != s.capacity_pages_total() {
                    violations.push(format!(
                        "page leak after lease reclamation: {} free of {}",
                        s.free_pages_total(),
                        s.capacity_pages_total()
                    ));
                }
            }
        }
        (m.completed, m.errors, checksum.get(), violations)
    });
    CaseResult {
        completed,
        errors,
        end_ns: sim.now().nanos(),
        polls: sim.poll_count(),
        checksum,
        violations,
    }
}

/// Fig. 7 COW workload under one fault class: four clients hammer one
/// shared ref with map/COW-write/read cycles while faults run; one client
/// fail-stops mid-run under [`FaultClass::ServerCrash`]. Teardown crashes
/// the rest and verifies lease reclamation empties every pin.
pub fn run_cow_case(fault: FaultClass, seed: u64) -> CaseResult {
    const PATTERN: u8 = 0x5A;
    const REGION: usize = 8 * 4096;
    let sim = Sim::new();
    let (completed, errors, checksum, violations) = sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), seed);
        let params = ModelParams::new();
        let dm_node = net.add_node("dm0", NicConfig::default());
        let servers = dmnet::start_pool(
            &net,
            &[dm_node],
            &params,
            DmServerConfig {
                capacity_pages: 4096,
                lease_ttl: Some(LEASE_TTL),
                // Explicit per-class durability keeps the fingerprints
                // independent of `DM_DURABLE` (see `run_chain_case`).
                durability: (fault == FaultClass::ServerCrashRecovery)
                    .then(dmnet::WalConfig::zero_cost),
                // Fine-grained coherence forced on (DESIGN.md §15).
                coherence: Some(dmnet::CoherenceConfig::default()),
                ..Default::default()
            },
        );
        let pool = vec![servers[0].addr()];
        let mut clients = Vec::new();
        let mut client_nodes = Vec::new();
        for i in 0..4 {
            let node = net.add_node(format!("c{i}"), NicConfig::default());
            let rpc = RpcBuilder::new(&net, node, 100)
                .config(chaos_rpc_config())
                .build();
            clients.push(Rc::new(
                // Caching + batching + per-ref coherence on: the fault
                // sweep must hold every invariant with the DESIGN.md §9/§15
                // client cache in play.
                DmNetClient::connect_with(rpc, pool.clone(), CacheConfig::fine_grained())
                    .await
                    .expect("fault-free connect"),
            ));
            client_nodes.push(node);
        }
        let capacity = servers[0].capacity_pages_total();

        // One shared region: the COW-isolation witness.
        let addr = clients[0].ralloc(REGION as u64).await.unwrap();
        clients[0]
            .rwrite(addr, &Bytes::from(vec![PATTERN; REGION]))
            .await
            .unwrap();
        let shared = Rc::new(clients[0].create_ref(addr, REGION as u64).await.unwrap());

        let links: Vec<(NodeId, NodeId)> = client_nodes.iter().map(|&c| (c, dm_node)).collect();
        let stop = Rc::new(Cell::new(false));
        let checksum = Rc::new(Cell::new(0u64));
        let violations = Rc::new(RefCell::new(Vec::new()));
        spawn_fault_driver(
            net.clone(),
            links,
            vec![servers[0].clone()],
            fault,
            SimRng::new(seed ^ 0xFA11),
            stop.clone(),
            violations.clone(),
        );
        if fault.crashes_servers() {
            // One client fail-stops mid-run; its lease must reclaim the
            // mapping it inevitably leaks.
            let victim = clients[3].clone();
            simcore::spawn(async move {
                simcore::sleep(Duration::from_micros(800)).await;
                victim.simulate_crash();
            });
        }

        // Zero-lost-acks oracle (recovery class only): every acknowledged
        // `put_ref` from a non-victim client is recorded with its owner and
        // fill byte. After the last recovery the contract is a dichotomy:
        // an owner whose lease survived must read every acked ref back
        // byte-exact; an owner the lease plane reclaimed (repeated crash
        // windows can starve renewals past the TTL — that reclamation is
        // itself logged, hence crash-consistent) must see every ref
        // released, never a resurrected or half-alive one.
        let acked: Rc<RefCell<Vec<(usize, dmcommon::Ref, u8)>>> = Rc::new(RefCell::new(Vec::new()));
        let m = {
            let clients = clients.clone();
            let shared = shared.clone();
            let checksum = checksum.clone();
            let violations = violations.clone();
            let acked = acked.clone();
            run_closed_loop(
                4,
                Duration::from_micros(100),
                Duration::from_micros(1500),
                Rc::new(move |w: usize, i: u64| {
                    let ci = w % clients.len();
                    let victim = ci == 3;
                    let c = clients[ci].clone();
                    let shared = shared.clone();
                    let checksum = checksum.clone();
                    let violations = violations.clone();
                    let acked = acked.clone();
                    async move {
                        // COW isolation: the shared ref always reads its
                        // original bytes, even while other workers write.
                        let probe = c.read_ref(&shared, 0, 64).await?;
                        if !probe.iter().all(|&b| b == PATTERN) {
                            violations
                                .borrow_mut()
                                .push("COW isolation: shared ref mutated".into());
                        }
                        // Map, COW-diverge, verify the private copy, unmap.
                        // An op that faults mid-flight leaks its mapping —
                        // exactly what lease reclamation must clean up.
                        let mapping = c.map_ref(&shared).await?;
                        c.rwrite(mapping, &Bytes::from(vec![!PATTERN; 32])).await?;
                        let back = c.rread(mapping, 32).await?;
                        if !back.iter().all(|&b| b == !PATTERN) {
                            violations
                                .borrow_mut()
                                .push("COW write lost on private mapping".into());
                        }
                        c.rfree(mapping).await?;
                        // Recovery oracle: record every acknowledged put
                        // (non-victim clients only — the victim fail-stops
                        // mid-run, racing its own worker). An errored put
                        // is indeterminate and stays out.
                        if fault == FaultClass::ServerCrashRecovery && !victim {
                            let fill = (w as u8).wrapping_mul(31).wrapping_add(i as u8) | 1;
                            if let Ok(r) = c.put_ref(&Bytes::from(vec![fill; 512])).await {
                                acked.borrow_mut().push((ci, r, fill));
                            }
                        }
                        checksum.set(
                            checksum
                                .get()
                                .wrapping_mul(31)
                                .wrapping_add(probe[0] as u64),
                        );
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await
        };

        stop.set(true);
        net.clear_faults();
        servers[0].restart();
        simcore::sleep(Duration::from_millis(1)).await;
        servers[0].check_invariants_all();

        if fault == FaultClass::ServerCrashRecovery {
            // Which owners does the lease plane still recognize? A probe
            // alloc succeeds iff the pid is still registered (a reclaimed
            // owner gets `InvalidAddress` and would have to re-register).
            let mut alive = [false; 4];
            for (i, c) in clients.iter().enumerate() {
                if let Ok(probe) = c.ralloc(4096).await {
                    alive[i] = true;
                    let _ = c.rfree(probe).await;
                }
            }
            // Read every acked ref back through a fresh cache-off client,
            // so hits must come from the recovered server itself rather
            // than a survivor's cache. (Trailer-aware but not caching: a
            // coherent server frames versions into every ok response.)
            let vnode = net.add_node("verify", NicConfig::default());
            let vrpc = RpcBuilder::new(&net, vnode, 100)
                .config(chaos_rpc_config())
                .build();
            let verifier = DmNetClient::connect_with(
                vrpc,
                pool.clone(),
                CacheConfig {
                    fine_grained: true,
                    ..CacheConfig::default()
                },
            )
            .await
            .expect("healed fabric: verifier connect");
            let acked_snapshot = acked.borrow().clone();
            for (ci, r, fill) in acked_snapshot.iter() {
                let got = verifier.read_ref(r, 0, 512).await;
                if alive[*ci] {
                    // Zero lost acknowledged puts.
                    match got {
                        Ok(b) if b.iter().all(|&x| x == *fill) => {}
                        Ok(_) => violations.borrow_mut().push(format!(
                            "recovery: acked put_ref (fill {fill:#04x}) read back wrong bytes"
                        )),
                        Err(e) => violations.borrow_mut().push(format!(
                            "recovery: acked put_ref (fill {fill:#04x}) lost: {e:?}"
                        )),
                    }
                } else {
                    // Zero resurrected frees: a reclaimed owner's refs are
                    // fully released, never half-alive.
                    match got {
                        Err(dmcommon::DmError::InvalidRef) => {}
                        other => violations.borrow_mut().push(format!(
                            "recovery: reclaimed owner's ref resurrected: {other:?}"
                        )),
                    }
                }
            }
            verifier.simulate_crash();
        }

        // Teardown: fail-stop every client; the sweeper must return every
        // page (including mappings leaked by faulted ops and the crashed
        // client's pins) to the free list.
        for c in &clients {
            c.simulate_crash();
        }
        simcore::sleep(3 * LEASE_TTL).await;
        servers[0].sweep_expired_leases();
        servers[0].check_invariants_all();
        let mut violations = violations.borrow().clone();
        if servers[0].free_pages_total() != capacity {
            violations.push(format!(
                "page leak after lease reclamation: {} free of {}",
                servers[0].free_pages_total(),
                capacity
            ));
        }
        if fault.crashes_servers() && servers[0].leases_reclaimed() == 0 {
            violations.push("crashed client's lease never reclaimed".into());
        }
        servers[0].shutdown(); // stops the lease sweeper
        (m.completed, m.errors, checksum.get(), violations)
    });
    CaseResult {
        completed,
        errors,
        end_ns: sim.now().nanos(),
        polls: sim.poll_count(),
        checksum,
        violations,
    }
}

/// Sharded DM plane under one fault class (DESIGN.md §13): three DM
/// servers, three consistent-hash clients doing put/read/migrate/release
/// cycles — so every fault window can hit a MIGRATE mid-flight. Checks on
/// top of the shared invariants:
///
/// * a successful post-migration read is byte-exact (the transfer, the
///   redirect tombstone and the relocation cache never corrupt data);
/// * a MIGRATE that faults is atomic — the source keeps serving the gkey,
///   and any duplicate the destination installed is owner-attributed, so
///   the lease teardown reclaims it (the free-pages check proves it);
/// * under [`FaultClass::ServerCrashRecovery`] the gkey bindings and
///   tombstones are part of the durable state the digest oracle replays.
pub fn run_sharded_case(fault: FaultClass, seed: u64) -> CaseResult {
    const REF_LEN: usize = 2048;
    let sim = Sim::new();
    let (completed, errors, checksum, violations) = sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), seed);
        let params = ModelParams::new();
        let dm_nodes: Vec<NodeId> = (0..3)
            .map(|i| net.add_node(format!("dm{i}"), NicConfig::default()))
            .collect();
        let servers = dmnet::start_pool(
            &net,
            &dm_nodes,
            &params,
            DmServerConfig {
                capacity_pages: 4096,
                lease_ttl: Some(LEASE_TTL),
                // Explicit per-class durability keeps the fingerprints
                // independent of `DM_DURABLE` (see `run_chain_case`).
                durability: (fault == FaultClass::ServerCrashRecovery)
                    .then(dmnet::WalConfig::zero_cost),
                // Fine-grained coherence forced on: MIGRATE version
                // transfer, `GVer` replay and targeted pushes all race the
                // fault windows here.
                coherence: Some(dmnet::CoherenceConfig::default()),
                ..Default::default()
            },
        );
        let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        let mut clients = Vec::new();
        let mut client_nodes = Vec::new();
        for i in 0..3 {
            let node = net.add_node(format!("c{i}"), NicConfig::default());
            let rpc = RpcBuilder::new(&net, node, 100)
                .config(chaos_rpc_config())
                .build();
            clients.push(Rc::new(
                DmNetClient::connect_sharded(
                    rpc,
                    pool.clone(),
                    CacheConfig::fine_grained(),
                    dmnet::ShardConfig::default(),
                    seed,
                )
                .await
                .expect("fault-free connect"),
            ));
            client_nodes.push(node);
        }
        let capacity: usize = servers.iter().map(|s| s.capacity_pages_total()).sum();

        // Fault candidates: every client↔DM link plus the DM↔DM links the
        // MIGRATE transfers ride.
        let mut links: Vec<(NodeId, NodeId)> = client_nodes
            .iter()
            .flat_map(|&c| dm_nodes.iter().map(move |&d| (c, d)))
            .collect();
        links.extend(
            dm_nodes
                .iter()
                .flat_map(|&a| dm_nodes.iter().map(move |&b| (a, b)))
                .filter(|(a, b)| a != b),
        );
        let stop = Rc::new(Cell::new(false));
        let checksum = Rc::new(Cell::new(0u64));
        let violations = Rc::new(RefCell::new(Vec::new()));
        spawn_fault_driver(
            net.clone(),
            links,
            servers.clone(),
            fault,
            SimRng::new(seed ^ 0xFA11),
            stop.clone(),
            violations.clone(),
        );
        if fault.crashes_servers() {
            // One client fail-stops mid-run: its gkeys (wherever migration
            // put them) must be lease-reclaimed on every shard.
            let victim = clients[2].clone();
            simcore::spawn(async move {
                simcore::sleep(Duration::from_micros(800)).await;
                victim.simulate_crash();
            });
        }

        let m = {
            let clients = clients.clone();
            let checksum = checksum.clone();
            let violations = violations.clone();
            run_closed_loop(
                3,
                Duration::from_micros(100),
                Duration::from_micros(1500),
                Rc::new(move |w: usize, i: u64| {
                    let c = clients[w % clients.len()].clone();
                    let checksum = checksum.clone();
                    let violations = violations.clone();
                    async move {
                        let fill = (w as u8).wrapping_mul(37).wrapping_add(i as u8) | 1;
                        let data = Bytes::from(vec![fill; REF_LEN]);
                        let r = c.put_ref(&data).await?;
                        if let Ok(b) = c.read_ref(&r, 0, REF_LEN as u64).await {
                            if !b.iter().all(|&x| x == fill) {
                                violations
                                    .borrow_mut()
                                    .push("sharded: put_ref read back wrong bytes".into());
                            }
                        }
                        if i.is_multiple_of(2) {
                            // Migrate off the ring home; a typed error
                            // (faulted transfer) must leave the ref served
                            // at the source, which the re-read proves.
                            let dmcommon::Ref::Net { server, .. } = &r else {
                                unreachable!("sharded client mints Net refs")
                            };
                            let dst = dmcommon::DmServerId((server.0 + 1 + w as u8 % 2) % 3);
                            let _ = c.migrate_ref(&r, dst).await;
                            match c.read_ref(&r, 0, REF_LEN as u64).await {
                                Ok(b) if !b.iter().all(|&x| x == fill) => {
                                    violations
                                        .borrow_mut()
                                        .push("sharded: migration corrupted ref bytes".into());
                                }
                                _ => {}
                            }
                        }
                        checksum.set(checksum.get().wrapping_mul(31).wrapping_add(fill as u64));
                        c.release_ref(&r).await?;
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await
        };

        // Heal and drain, then fail-stop every client: after lease
        // reclamation every page — including migrated duplicates from
        // faulted transfers — must be back on the free lists.
        stop.set(true);
        net.clear_faults();
        for s in &servers {
            s.restart();
        }
        simcore::sleep(Duration::from_millis(1)).await;
        for c in &clients {
            c.simulate_crash();
        }
        simcore::sleep(3 * LEASE_TTL).await;
        let mut violations = violations.borrow().clone();
        let mut free = 0usize;
        let mut reclaimed = 0u64;
        for s in &servers {
            s.sweep_expired_leases();
            s.check_invariants_all();
            free += s.free_pages_total();
            reclaimed += s.leases_reclaimed();
        }
        if free != capacity {
            violations.push(format!(
                "sharded page leak after lease reclamation: {free} free of {capacity}"
            ));
        }
        if fault.crashes_servers() && reclaimed == 0 {
            violations.push("sharded: crashed client's lease never reclaimed".into());
        }
        for s in &servers {
            s.shutdown();
        }
        (m.completed, m.errors, checksum.get(), violations)
    });
    CaseResult {
        completed,
        errors,
        end_ns: sim.now().nanos(),
        polls: sim.poll_count(),
        checksum,
        violations,
    }
}

/// Scale factor for the overloaded social case: 10k users, big enough to
/// exercise the scaled population plumbing, small enough to keep the
/// seed sweep fast.
const SLO_SOCIAL_SF: u32 = 10;

/// Offered rate for the social case: 1.2× the SF=10 knee measured by
/// `xtra_slo_scale` (250 krps) — past saturation by design, so the
/// admission plane sheds under every fault class.
const SLO_SOCIAL_RATE: f64 = 300e3;

/// DeathStarBench social workload over a scaled population, offered 1.2×
/// its measured knee with the full overload-control plane ON (front-door
/// admission + CoDel at nginx, bounded DM-server admission, client token
/// limiting), under one fault class. On top of the shared invariants:
///
/// * **graceful degradation** — even overloaded and faulted, goodput
///   never collapses to zero: some requests complete, and `Busy` sheds
///   are typed rejections, never hangs or violations;
/// * **no leaks under shedding** — a shed compose must release the media
///   ref it minted before the front door bounced it; after heal +
///   client-crash + lease sweep, every page is back on the free lists
///   (media of shed composes included).
pub fn run_slo_social_case(fault: FaultClass, seed: u64) -> CaseResult {
    let sim = Sim::new();
    let (completed, errors, checksum, violations) = sim.block_on(async move {
        let config = ClusterConfig {
            rpc: chaos_rpc_config(),
            lease_ttl: Some(LEASE_TTL),
            dm_capacity_pages: 4096,
            // Explicit per-class durability keeps the fingerprints
            // independent of `DM_DURABLE` (see `run_chain_case`).
            dm_durability: (fault == FaultClass::ServerCrashRecovery)
                .then(dmnet::WalConfig::zero_cost),
            dm_admission: Some(dmnet::AdmissionConfig::default()),
            dm_client_limit: dmnet::ClientLimitConfig::enabled(),
            // Fine-grained coherence forced on (DESIGN.md §15).
            dm_client_cache: CacheConfig::fine_grained(),
            ..Default::default()
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, seed);
        let pop = Population::new(SLO_SOCIAL_SF, 42);
        let app = Rc::new(
            build_social_scaled(
                &cluster,
                pop,
                8192,
                seed,
                Some(crate::slo_scale::front_admission()),
            )
            .await,
        );
        // Preload is fault-free: the driver spawns after it.
        app.preload(50).await.expect("fault-free preload");

        let mut nodes: Vec<NodeId> = cluster.servers().iter().map(|s| s.id).collect();
        nodes.extend(cluster.dm_servers.iter().map(|s| s.addr().node));
        let links: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .flat_map(|&a| nodes.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .collect();
        let stop = Rc::new(Cell::new(false));
        let checksum = Rc::new(Cell::new(0u64));
        let violations = Rc::new(RefCell::new(Vec::new()));
        spawn_fault_driver(
            cluster.net.clone(),
            links,
            cluster.dm_servers.clone(),
            fault,
            SimRng::new(seed ^ 0xFA11),
            stop.clone(),
            violations.clone(),
        );

        let m = {
            let app = app.clone();
            let checksum = checksum.clone();
            run_open_loop_classified(
                SLO_SOCIAL_RATE,
                Duration::from_micros(100),
                Duration::from_micros(1000),
                SimRng::new(seed ^ 0x510),
                Rc::new(move |n: u64| {
                    let app = app.clone();
                    let checksum = checksum.clone();
                    async move {
                        app.mixed_request().await?;
                        // Completion-order fold: part of the determinism
                        // fingerprint.
                        checksum.set(checksum.get().wrapping_mul(31).wrapping_add(n));
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
                Rc::new(|e: &dmcommon::DmError| matches!(e, dmcommon::DmError::Busy)),
            )
            .await
        };

        // Heal and drain.
        stop.set(true);
        cluster.net.clear_faults();
        for s in &cluster.dm_servers {
            s.restart();
        }
        simcore::sleep(Duration::from_millis(1)).await;

        let mut violations = violations.borrow().clone();
        if m.completed == 0 {
            violations.push(format!(
                "slo-social: goodput collapsed to zero ({} errors, {} rejected)",
                m.errors, m.rejected
            ));
        }
        for s in &cluster.dm_servers {
            s.check_invariants_all();
        }
        // Fail-stop every client process; once the leases expire the
        // sweeper must return every page — including media refs minted by
        // composes the front door later shed — to the free list.
        for ep in cluster.endpoints() {
            if let Some(DmHandle::Net(c)) = ep.dm() {
                c.simulate_crash();
            }
        }
        simcore::sleep(3 * LEASE_TTL).await;
        for s in &cluster.dm_servers {
            s.sweep_expired_leases();
            s.check_invariants_all();
            if s.free_pages_total() != s.capacity_pages_total() {
                violations.push(format!(
                    "slo-social page leak after lease reclamation: {} free of {}",
                    s.free_pages_total(),
                    s.capacity_pages_total()
                ));
            }
        }
        // Rejections are deliberate shed, not errors: fold them into the
        // fingerprint via the error count so a classifier regression
        // (Busy counted as a real error) shifts the fingerprint.
        (
            m.completed,
            m.errors + m.rejected,
            checksum.get(),
            violations,
        )
    });
    CaseResult {
        completed,
        errors,
        end_ns: sim.now().nanos(),
        polls: sim.poll_count(),
        checksum,
        violations,
    }
}

type Case = Box<dyn Fn() -> CaseResult>;

/// One executed case with its identity: the unit the parallel sweep must
/// reproduce fingerprint-for-fingerprint against the serial sweep.
#[derive(Clone, Debug)]
pub struct CaseRecord {
    /// Workload label (e.g. `fig5-chain/dmnet`).
    pub name: &'static str,
    /// Fault class the case ran under.
    pub fault: FaultClass,
    /// Sweep seed.
    pub seed: u64,
    /// Whether this is a determinism rerun of the previous record (reruns
    /// count as cases but not toward completed/error totals).
    pub rerun: bool,
    /// The case outcome.
    pub result: CaseResult,
}

/// One seed's output: its case records plus any invariant violations.
type SeedResults = (Vec<CaseRecord>, Vec<String>);

/// Run every (workload × fault class) case for one seed, in the fixed
/// serial order, plus a determinism double-run of each case on every
/// `determinism_stride`-th seed (0 disables). This is the unit of work of
/// both the serial and the parallel sweeps: each case builds its own
/// thread-local [`Sim`], so seeds are independent by construction.
fn run_seed(seed: u64, determinism_stride: u64) -> SeedResults {
    let mut records = Vec::new();
    let mut violations = Vec::new();
    for fault in FaultClass::ALL {
        let cases: [(&'static str, Case); 5] = [
            (
                "fig5-chain/erpc",
                Box::new(move || run_chain_case(SystemKind::Erpc, fault, seed)),
            ),
            (
                "fig5-chain/dmnet",
                Box::new(move || run_chain_case(SystemKind::DmNet, fault, seed)),
            ),
            (
                "fig7-cow/dmnet",
                Box::new(move || run_cow_case(fault, seed)),
            ),
            (
                "shard-migrate/dmnet",
                Box::new(move || run_sharded_case(fault, seed)),
            ),
            (
                "slo-social/dmnet",
                Box::new(move || run_slo_social_case(fault, seed)),
            ),
        ];
        for (name, case) in cases {
            let r = case();
            for v in &r.violations {
                violations.push(format!("{name} {} seed {seed}: {v}", fault.label()));
            }
            let fp = r.fingerprint();
            records.push(CaseRecord {
                name,
                fault,
                seed,
                rerun: false,
                result: r,
            });
            if determinism_stride > 0 && seed.is_multiple_of(determinism_stride) {
                let again = case();
                if again.fingerprint() != fp {
                    violations.push(format!(
                        "{name} {} seed {seed}: nondeterministic ({:?} vs {:?})",
                        fault.label(),
                        fp,
                        again.fingerprint()
                    ));
                }
                records.push(CaseRecord {
                    name,
                    fault,
                    seed,
                    rerun: true,
                    result: again,
                });
            }
        }
    }
    (records, violations)
}

/// Result of one seed sweep.
pub struct SweepOutcome {
    /// Cases executed (workload x fault class x seed, counting reruns).
    pub cases: u64,
    /// Requests completed across all cases.
    pub completed: u64,
    /// Typed errors across all cases.
    pub errors: u64,
    /// All invariant violations, labeled with their case.
    pub violations: Vec<String>,
    /// Every executed case in deterministic (seed-major) order.
    pub records: Vec<CaseRecord>,
}

/// Merge per-seed outputs (already in ascending seed order) into one
/// [`SweepOutcome`]. Shared by the serial and parallel sweeps so their
/// aggregation is identical by construction.
fn merge_seeds(per_seed: Vec<SeedResults>) -> SweepOutcome {
    let mut out = SweepOutcome {
        cases: 0,
        completed: 0,
        errors: 0,
        violations: Vec::new(),
        records: Vec::new(),
    };
    for (records, violations) in per_seed {
        for r in &records {
            out.cases += 1;
            if !r.rerun {
                out.completed += r.result.completed;
                out.errors += r.result.errors;
            }
        }
        out.records.extend(records);
        out.violations.extend(violations);
    }
    out
}

/// Sweep `seeds` serially across every fault class and both workloads.
/// Every `determinism_stride`-th seed (0 disables) runs each case twice
/// and the fingerprints must match bit for bit.
pub fn sweep(seeds: std::ops::Range<u64>, determinism_stride: u64) -> SweepOutcome {
    merge_seeds(
        seeds
            .map(|seed| run_seed(seed, determinism_stride))
            .collect(),
    )
}

/// [`sweep`], parallelized across `threads` OS threads via the shared
/// [`crate::pool::scoped_map`] idiom (seed *i* → thread *i* mod
/// `threads`). Every case builds its own thread-local [`Sim`], so nothing
/// is shared between workers; the pool returns results in ascending seed
/// order, making the outcome — per-seed fingerprints included —
/// byte-identical to the serial sweep.
pub fn sweep_parallel(
    seeds: std::ops::Range<u64>,
    determinism_stride: u64,
    threads: usize,
) -> SweepOutcome {
    let all: Vec<u64> = seeds.collect();
    merge_seeds(crate::pool::scoped_map(all.len(), threads, |i| {
        run_seed(all[i], determinism_stride)
    }))
}

/// Threads used by [`run`]: `CHAOS_THREADS` env override, else the
/// machine's available parallelism.
fn default_threads() -> usize {
    crate::pool::chaos_threads()
}

/// Run the full sweep (parallel across OS threads) and print the report;
/// exits nonzero on violations (the CI `chaos` job gates on this).
pub fn run() {
    let seeds: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let threads = default_threads();
    let out = sweep_parallel(0..seeds, 10, threads);
    let mut t = crate::report::Table::new(
        "xtra_chaos",
        &["fault", "cases", "completed", "errors", "violations"],
    );
    for fault in FaultClass::ALL {
        let mut cases = 0u64;
        let mut completed = 0u64;
        let mut errors = 0u64;
        let mut violations = 0usize;
        for r in out.records.iter().filter(|r| r.fault == fault) {
            cases += 1;
            if !r.rerun {
                completed += r.result.completed;
                errors += r.result.errors;
                violations += r.result.violations.len();
            }
        }
        t.row(&[&fault.label(), &cases, &completed, &errors, &violations]);
    }
    t.finish();
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    println!(
        "  chaos sweep clean: {seeds} seeds x {} fault classes on {threads} threads",
        FaultClass::ALL.len()
    );
}
