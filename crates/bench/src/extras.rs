//! Extra experiments beyond the paper's figures, backing specific claims
//! and design choices (DESIGN.md §6):
//!
//! * [`translation_overhead`] — §V-A2's "software translation is 0.17% of
//!   total DM access time";
//! * [`size_threshold`] — the size-aware transfer crossover (§IV-B);
//! * [`ownership_batching`] — the DmRPC-CXL coordinator batching ablation
//!   (§V-B1).

use std::rc::Rc;
use std::time::Duration;

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use dmcxl::{CxlFabric, CxlHostConfig};
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

use crate::report::{f2, f3, size_label, Table};

/// Translation-overhead experiment: stream rreads through one DM server and
/// report the fraction of (a) server op time and (b) end-to-end access time
/// spent in software translation.
pub fn translation_overhead() {
    let mut t = Table::new(
        "xtra_translation_overhead",
        &[
            "read_size",
            "server_fraction_pct",
            "end_to_end_fraction_pct",
        ],
    );
    for size in [4096usize, 65536, 1 << 20] {
        let sim = Sim::new();
        let (server_frac, e2e_frac) = sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::DmNet, 1, ClusterConfig::default(), 2);
            let node = cluster.add_server("client");
            let ep = cluster.endpoint(&node, 100).await;
            let dm = ep.dm().expect("dm").clone();
            let addr = dm.alloc(size as u64).await.expect("alloc");
            dm.write(addr, &Bytes::from(vec![1u8; size]))
                .await
                .expect("write");
            let t0 = simcore::now();
            let n = 50;
            for _ in 0..n {
                dm.read(addr, size as u64).await.expect("read");
            }
            let total = (simcore::now() - t0).as_nanos() as f64;
            let lookups = cluster.dm_servers[0].with_page_manager(|pm| pm.translator().lookups());
            // 15 ns per lookup (DmServerConfig::translation_cpu default).
            let translation_ns = lookups as f64 * 15.0;
            (
                cluster.dm_servers[0].translation_fraction() * 100.0,
                translation_ns / total * 100.0,
            )
        });
        t.row(&[&size_label(size), &f3(server_frac), &f3(e2e_frac)]);
    }
    t.finish();
}

/// Size-aware transfer ablation: sweep argument sizes through a 3-service
/// chain with the threshold forced to 0 (always by-ref) or ∞ (always
/// by-value), showing the crossover that motivates the default (1 page).
pub fn size_threshold() {
    let mut t = Table::new(
        "xtra_size_threshold",
        &[
            "arg_size",
            "by_value_latency_us",
            "by_ref_latency_us",
            "winner",
        ],
    );
    for size in [256usize, 1024, 2048, 4096, 8192, 32768, 131_072] {
        let lat = |threshold: Option<u64>| {
            let sim = Sim::new();
            sim.block_on(async move {
                let config = ClusterConfig {
                    threshold,
                    ..Default::default()
                };
                let cluster = Cluster::new(SystemKind::DmNet, 2, config, 4);
                let app = build_chain(&cluster, 3).await;
                let payload = Bytes::from(vec![7u8; size]);
                app.request(&payload).await.expect("warmup");
                let t0 = simcore::now();
                for _ in 0..5 {
                    app.request(&payload).await.expect("request");
                }
                (simcore::now() - t0).as_nanos() as f64 / 5.0 / 1e3
            })
        };
        let by_value = lat(Some(u64::MAX));
        let by_ref = lat(Some(1)); // everything but empty goes to DM
        let winner = if by_value <= by_ref {
            "by-value"
        } else {
            "by-ref"
        };
        t.row(&[&size_label(size), &f2(by_value), &f2(by_ref), &winner]);
    }
    t.finish();
}

/// Ownership-batching ablation: store-fault throughput and coordinator RPC
/// count versus the grant batch size.
pub fn ownership_batching() {
    let mut t = Table::new(
        "xtra_ownership_batching",
        &[
            "batch",
            "faults_per_ms",
            "coordinator_rpcs",
            "pages_faulted",
        ],
    );
    for batch in [1usize, 4, 16, 64, 256] {
        let sim = Sim::new();
        let (rate, rpcs, faults) = sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 9);
            let coord = net.add_node("coord", NicConfig::default());
            let host_node = net.add_node("host", NicConfig::default());
            let cfg = CxlHostConfig {
                request_batch: batch,
                low_watermark: (batch / 2).max(1),
                high_watermark: batch * 8,
                ..Default::default()
            };
            let fabric = CxlFabric::new(&net, coord, 1 << 18, memsim::ModelParams::new(), cfg);
            let host = fabric.new_host(RpcBuilder::new(&net, host_node, 100).build());
            let total_pages = 4096u64;
            let va = host.alloc(total_pages * 4096).unwrap();
            let t0 = simcore::now();
            // Touch every page once: pure fault workload.
            let h2 = host.clone();
            let _ = run_closed_loop(
                1,
                Duration::ZERO,
                Duration::from_millis(50),
                Rc::new(move |_w, i| {
                    let host = h2.clone();
                    async move {
                        if i >= total_pages {
                            // Done: idle out the rest of the window quickly.
                            simcore::sleep(Duration::from_millis(50)).await;
                            return Ok(());
                        }
                        host.store(va + i * 4096, &[1u8]).await
                    }
                }),
            )
            .await;
            let elapsed_ms = (simcore::now() - t0).as_nanos() as f64 / 1e6;
            (
                host.stats().faults.get() as f64 / elapsed_ms,
                host.stats().coord_rpcs.get(),
                host.stats().faults.get(),
            )
        });
        t.row(&[&batch, &f2(rate), &rpcs, &faults]);
    }
    t.finish();
}

/// Hardware-translation ablation (paper §V-A2 future work): MMU-direct
/// translation versus the software hash table, on a saturating 4 KiB rread
/// workload against a single-core DM server.
pub fn hw_translation() {
    let mut t = Table::new(
        "xtra_hw_translation",
        &["translation", "rread_krps", "unloaded_us"],
    );
    for (label, hw) in [("software", false), ("mmu-direct", true)] {
        let sim = Sim::new();
        let (rate, lat) = sim.block_on(async move {
            let net = Network::new(FabricConfig::default(), 13);
            let dm_node = net.add_node("dm0", NicConfig::default());
            let c_node = net.add_node("c0", NicConfig::default());
            let cfg = dmnet::DmServerConfig {
                cores: 1,
                hw_translation: hw,
                ..Default::default()
            };
            let mem = memsim::NodeMemory::with_defaults("dm0", memsim::ModelParams::new());
            let server = dmnet::DmServer::start(&net, dm_node, mem, cfg);
            let rpc = RpcBuilder::new(&net, c_node, 100).build();
            let dm = dmnet::DmNetClient::connect(rpc, vec![server.addr()])
                .await
                .expect("connect");
            let addr = dm.ralloc(4096).await.expect("alloc");
            dm.rwrite(addr, &Bytes::from(vec![1u8; 4096]))
                .await
                .expect("write");
            let t0 = simcore::now();
            dm.rread(addr, 4096).await.expect("read");
            let lat = (simcore::now() - t0).as_nanos() as f64 / 1e3;
            let dm = Rc::new(dm);
            let m = run_closed_loop(
                16,
                Duration::from_micros(100),
                Duration::from_millis(4),
                Rc::new(move |_w, _i| {
                    let dm = dm.clone();
                    async move { dm.rread(addr, 4096).await.map(|_| ()) }
                }),
            )
            .await;
            (m.throughput_rps() / 1e3, lat)
        });
        t.row(&[&label, &f2(rate), &f2(lat)]);
    }
    t.finish();
}

/// Core-scaling ablation (paper §VI-E: "the system throughput increases
/// almost linearly with the number of used CPU cores"): sweep compute-
/// server cores for the image pipeline under DmRPC-CXL at 32 KiB.
pub fn core_scaling() {
    use apps::image_pipeline::{build_pipeline, OP_TRANSCODE};
    let mut t = Table::new(
        "xtra_core_scaling",
        &["cores_per_node", "throughput_krps", "scaling_vs_1core"],
    );
    let mut base = 0.0f64;
    for cores in [1u64, 2, 4, 8, 12] {
        // Offered concurrency proportional to capacity so low-core points
        // measure capacity rather than overload pathology.
        let workers = (8 * cores) as usize;
        let sim = Sim::new();
        let krps = sim.block_on(async move {
            let config = ClusterConfig {
                cores_per_node: cores,
                ..Default::default()
            };
            let cluster = Cluster::new(SystemKind::DmCxl, 1, config, 14);
            let app = Rc::new(build_pipeline(&cluster).await);
            let image = Bytes::from(vec![9u8; 32 * 1024]);
            app.request(OP_TRANSCODE, &image).await.expect("warmup");
            let m = run_closed_loop(
                workers,
                Duration::from_millis(1),
                Duration::from_millis(4),
                Rc::new(move |_w, _i| {
                    let app = app.clone();
                    let image = image.clone();
                    async move { app.request(OP_TRANSCODE, &image).await.map(|_| ()) }
                }),
            )
            .await;
            m.throughput_rps() / 1e3
        });
        if base == 0.0 {
            base = krps.max(1e-9);
        }
        t.row(&[&cores, &f2(krps), &f2(krps / base)]);
        let _ = workers;
    }
    t.finish();
}

/// Run all extra experiments.
pub fn run() {
    translation_overhead();
    size_threshold();
    ownership_batching();
    hw_translation();
    core_scaling();
}
