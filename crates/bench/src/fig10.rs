//! Fig. 10 — 7-tier cloud image processing: (a) end-to-end throughput
//! versus image size and (b) average/p99/p99.5/p99.9 latency at 4 KB.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::image_pipeline::{build_pipeline, OP_COMPRESS, OP_TRANSCODE};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

use crate::report::{f2, render_bars, size_label, Table};

/// Image sizes swept for Fig. 10a.
pub const SIZES: [usize; 6] = [1024, 4096, 8192, 32768, 131_072, 1_048_576];

/// Measure one configuration; returns the `Measured` for further digestion.
pub fn run_point(kind: SystemKind, size: usize, workers: usize) -> apps::Measured {
    // Larger images need a longer window to collect enough completions.
    let window = if size >= 512 * 1024 {
        Duration::from_millis(40)
    } else if size >= 64 * 1024 {
        Duration::from_millis(15)
    } else {
        Duration::from_millis(4)
    };
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 10);
        let app = Rc::new(build_pipeline(&cluster).await);
        // Three generator clients so a single client NIC does not bound
        // large-image throughput (the paper scales load similarly).
        let mut clients: Vec<std::rc::Rc<dmrpc::DmRpc>> = vec![app.client.clone()];
        for i in 0..2 {
            let node = cluster.add_server(format!("client{i}"));
            clients.push(cluster.endpoint(&node, 100).await);
        }
        let clients = Rc::new(clients);
        let image = Bytes::from(vec![9u8; size]);
        app.request(OP_TRANSCODE, &image).await.expect("warmup");
        run_closed_loop(
            workers,
            Duration::from_millis(1),
            window,
            Rc::new(move |w: usize, _i: u64| {
                let app = app.clone();
                let client: std::rc::Rc<dmrpc::DmRpc> = clients[w % clients.len()].clone();
                let image = image.clone();
                // Alternate transcode/compress like the paper's app mix.
                let op = if w.is_multiple_of(2) {
                    OP_TRANSCODE
                } else {
                    OP_COMPRESS
                };
                async move { app.request_via(&client, op, &image).await.map(|_| ()) }
            }),
        )
        .await
    })
}

/// Run the experiment and emit the two CSVs. Measurement cells are
/// independent simulations, so they fan out across `SIM_THREADS` workers
/// (default 1); rows are assembled in sweep order, so the CSVs are
/// byte-identical at every thread count.
pub fn run() {
    let threads = crate::pool::sim_threads();
    let cells: Vec<(usize, SystemKind)> = SIZES
        .iter()
        .flat_map(|&size| SystemKind::ALL.into_iter().map(move |kind| (size, kind)))
        .collect();
    let measured = crate::pool::scoped_map(cells.len(), threads, |i| {
        let (size, kind) = cells[i];
        let m = run_point(kind, size, 64);
        (m.throughput_rps(), m.throughput_gbps(size as u64))
    });

    let mut ta = Table::new(
        "fig10a_image_throughput",
        &["image_size", "system", "throughput_krps", "throughput_gbps"],
    );
    let mut gbps_series: Vec<(&str, Vec<f64>)> = SystemKind::ALL
        .iter()
        .map(|k| (k.label(), Vec::new()))
        .collect();
    let mut labels = Vec::new();
    for (n, (cell, &(rps, gbps))) in cells.iter().zip(&measured).enumerate() {
        let (size, kind) = *cell;
        let i = n % SystemKind::ALL.len();
        if i == 0 {
            labels.push(size_label(size));
        }
        gbps_series[i].1.push(gbps);
        ta.row(&[&size_label(size), &kind.label(), &f2(rps / 1e3), &f2(gbps)]);
    }
    ta.finish();
    render_bars("Fig. 10a throughput (Gbps)", &labels, &gbps_series);

    let lat = crate::pool::scoped_map(SystemKind::ALL.len(), threads, |i| {
        let m = run_point(SystemKind::ALL[i], 4096, 16);
        (
            m.avg_latency_us(),
            m.latency_us(0.99),
            m.latency_us(0.995),
            m.latency_us(0.999),
        )
    });
    let mut tb = Table::new(
        "fig10b_image_latency",
        &["system", "avg_us", "p99_us", "p995_us", "p999_us"],
    );
    for (kind, (avg, p99, p995, p999)) in SystemKind::ALL.into_iter().zip(lat) {
        tb.row(&[&kind.label(), &f2(avg), &f2(p99), &f2(p995), &f2(p999)]);
    }
    tb.finish();
}
