//! Fig. 12 — DmRPC-CXL normalized throughput under different CXL memory
//! access latencies: (a) the Fig. 8 micro-benchmark, (b) the cloud image
//! processing application.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::image_pipeline::{build_pipeline, OP_TRANSCODE};
use apps::sharebench::build_sharebench;
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

use crate::report::{f3, Table};

/// Memory latencies swept (ns). 265 ns is the paper's operating point.
pub const LATENCIES_NS: [u64; 5] = [75, 165, 265, 365, 400];

fn micro_point(latency_ns: u64) -> f64 {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmCxl, 1, ClusterConfig::default(), 12);
        cluster
            .params
            .set_cxl_latency(Duration::from_nanos(latency_ns));
        let app = Rc::new(build_sharebench(&cluster).await);
        let block = Bytes::from(vec![1u8; 32 * 1024]);
        app.request(&block, 20).await.expect("warmup");
        let m = run_closed_loop(
            1,
            Duration::from_micros(100),
            Duration::from_millis(5),
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let block = block.clone();
                async move { app.request(&block, 20).await }
            }),
        )
        .await;
        m.throughput_rps()
    })
}

fn app_point(latency_ns: u64) -> f64 {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmCxl, 1, ClusterConfig::default(), 12);
        cluster
            .params
            .set_cxl_latency(Duration::from_nanos(latency_ns));
        let app = Rc::new(build_pipeline(&cluster).await);
        let image = Bytes::from(vec![9u8; 16384]);
        app.request(OP_TRANSCODE, &image).await.expect("warmup");
        let m = run_closed_loop(
            16,
            Duration::from_micros(300),
            Duration::from_millis(4),
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let image = image.clone();
                async move { app.request(OP_TRANSCODE, &image).await.map(|_| ()) }
            }),
        )
        .await;
        m.throughput_rps()
    })
}

/// Run the experiment and emit `results/fig12_cxl_latency.csv`.
pub fn run() {
    let mut t = Table::new(
        "fig12_cxl_latency",
        &[
            "mem_latency_ns",
            "micro_krps",
            "micro_normalized",
            "app_krps",
            "app_normalized",
        ],
    );
    let micro: Vec<f64> = LATENCIES_NS.iter().map(|&l| micro_point(l)).collect();
    let app: Vec<f64> = LATENCIES_NS.iter().map(|&l| app_point(l)).collect();
    let (m0, a0) = (micro[0].max(1e-9), app[0].max(1e-9));
    for (i, &l) in LATENCIES_NS.iter().enumerate() {
        t.row(&[
            &l,
            &f3(micro[i] / 1e3),
            &f3(micro[i] / m0),
            &f3(app[i] / 1e3),
            &f3(app[i] / a0),
        ]);
    }
    t.finish();
}
