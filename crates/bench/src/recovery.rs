//! `xtra_recovery` — cost model of the durable DM tier (DESIGN.md §12).
//!
//! Two questions, one table each:
//!
//! 1. **Recovery time vs log length** — a durable server on NVMe-class
//!    media replays its write-ahead log after a crash. Without
//!    compaction, recovery time grows linearly with the acknowledged op
//!    history; with checkpoint compaction the log (and therefore the
//!    replay) is bounded by the checkpoint threshold, independent of
//!    history length.
//! 2. **Durability overhead** — the Fig. 5 chain workload with the WAL
//!    off, in zero-cost mode (full bookkeeping, no virtual-time charge),
//!    and on NVMe-class media. Zero-cost durability must reproduce the
//!    durability-off schedule *exactly* (same completions, same virtual
//!    end time) — that is the property the CI `results-deterministic`
//!    job gates on — while the NVMe column shows the simulated price of
//!    real media.

use std::rc::Rc;
use std::time::Duration;

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use dmnet::{DmNetClient, DmServerConfig, WalConfig};
use memsim::{DurableMediaParams, ModelParams};
use rpclib::RpcBuilder;
use simcore::Sim;
use simnet::{FabricConfig, Network, NicConfig};

use crate::report::{f2, Table};

/// One measured recovery: acknowledged op count vs log size and replay
/// cost on NVMe-class media.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPoint {
    /// Acknowledged mutating ops before the crash.
    pub ops: u64,
    /// Live log size at crash time, bytes.
    pub log_bytes: u64,
    /// Records replayed by `restart_from_log`.
    pub replayed: usize,
    /// Checkpoint compactions that ran before the crash.
    pub compactions: u64,
    /// Virtual time spent in recovery, ns.
    pub recovery_ns: u64,
}

/// Drive `ops` acknowledged mutating ops against a durable single-node
/// server (NVMe media, `compact_threshold` bytes; 0 disables), then
/// crash it and measure `restart_from_log`.
pub fn recovery_point(ops: u64, compact_threshold: u64) -> RecoveryPoint {
    let sim = Sim::new();
    sim.block_on(async move {
        let net = Network::new(FabricConfig::default(), 42);
        let params = ModelParams::new();
        let dm_node = net.add_node("dm0", NicConfig::default());
        let servers = dmnet::start_pool(
            &net,
            &[dm_node],
            &params,
            DmServerConfig {
                capacity_pages: 4096,
                lease_ttl: None,
                durability: Some(WalConfig {
                    media: DurableMediaParams::nvme(),
                    compact_threshold_bytes: compact_threshold,
                }),
                ..Default::default()
            },
        );
        let server = servers[0].clone();
        let cnode = net.add_node("client", NicConfig::default());
        let rpc = RpcBuilder::new(&net, cnode, 100).build();
        let client = DmNetClient::connect(rpc, vec![server.addr()])
            .await
            .expect("connect");

        // Steady-state mutation mix over a bounded working set: small
        // writes dominate, with a put/release ref churn riding along.
        let region = client.ralloc(8 * 4096).await.expect("alloc");
        let mut refs = std::collections::VecDeque::new();
        for i in 0..ops {
            match i % 8 {
                7 => {
                    let r = client
                        .put_ref(&Bytes::from(vec![i as u8; 512]))
                        .await
                        .expect("put_ref");
                    refs.push_back(r);
                    if refs.len() > 4 {
                        let old = refs.pop_front().unwrap();
                        client.release_ref(&old).await.expect("release_ref");
                    }
                }
                k => {
                    let at = dmcommon::RemoteAddr {
                        va: region.va + k * 4096,
                        ..region
                    };
                    client
                        .rwrite(at, &Bytes::from(vec![i as u8; 256]))
                        .await
                        .expect("rwrite");
                }
            }
        }

        let wal = server.wal().expect("durable server");
        let log_bytes = wal.log_bytes();
        let compactions = wal.compactions();
        let pre = server.pages_digest();
        server.crash();
        let t0 = simcore::now().nanos();
        let report = server.restart_from_log().await;
        let recovery_ns = simcore::now().nanos() - t0;
        assert_eq!(server.pages_digest(), pre, "recovery diverged");
        assert!(!report.torn_tail, "clean log reported torn");
        RecoveryPoint {
            ops,
            log_bytes,
            replayed: report.records_replayed,
            compactions,
            recovery_ns,
        }
    })
}

/// One durability mode of the chain-workload comparison.
#[derive(Clone, Copy, Debug)]
pub struct OverheadPoint {
    /// Requests completed inside the measurement window.
    pub completed: u64,
    /// Virtual end time of the run, ns.
    pub end_ns: u64,
    /// Executor poll count (schedule fingerprint).
    pub polls: u64,
    /// WAL records appended (0 when durability is off).
    pub wal_records: u64,
    /// Live log bytes at teardown.
    pub wal_bytes: u64,
}

/// Run the Fig. 5 chain under one durability mode and report throughput
/// plus WAL volume.
pub fn overhead_point(durability: Option<WalConfig>) -> OverheadPoint {
    let sim = Sim::new();
    let (completed, wal_records, wal_bytes) = sim.block_on(async move {
        let config = ClusterConfig {
            dm_durability: durability,
            ..Default::default()
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, 42);
        let app = Rc::new(build_chain(&cluster, 3).await);
        let payload = Bytes::from(vec![7u8; 4096]);
        let m = run_closed_loop(
            8,
            Duration::from_micros(100),
            Duration::from_micros(2000),
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let payload = payload.clone();
                async move {
                    app.request(&payload).await?;
                    Ok::<(), dmcommon::DmError>(())
                }
            }),
        )
        .await;
        let (mut records, mut bytes) = (0, 0);
        for s in &cluster.dm_servers {
            if let Some(w) = s.wal() {
                records += w.records();
                bytes += w.log_bytes();
            }
        }
        (m.completed, records, bytes)
    });
    OverheadPoint {
        completed,
        end_ns: sim.now().nanos(),
        polls: sim.poll_count(),
        wal_records,
        wal_bytes,
    }
}

/// Run both sweeps, print the tables, and write
/// `results/xtra_recovery.csv`.
pub fn run() {
    println!("\n## xtra: durable-tier recovery cost (DESIGN.md §12)\n");
    let mut t = Table::new(
        "xtra_recovery",
        &[
            "section",
            "config",
            "ops",
            "log_kb",
            "replayed",
            "compactions",
            "metric",
        ],
    );

    // Recovery time vs log length: unbounded log vs 64 KiB checkpoints.
    for &ops in &[64u64, 256, 1024, 4096] {
        let p = recovery_point(ops, 0);
        t.row(&[
            &"recovery",
            &"no-compaction",
            &p.ops,
            &f2(p.log_bytes as f64 / 1024.0),
            &p.replayed,
            &p.compactions,
            &format!("{:.1}us", p.recovery_ns as f64 / 1000.0),
        ]);
        let c = recovery_point(ops, 64 * 1024);
        t.row(&[
            &"recovery",
            &"compact-64k",
            &c.ops,
            &f2(c.log_bytes as f64 / 1024.0),
            &c.replayed,
            &c.compactions,
            &format!("{:.1}us", c.recovery_ns as f64 / 1000.0),
        ]);
    }

    // Durability overhead on the chain workload.
    let off = overhead_point(None);
    let zero = overhead_point(Some(WalConfig::zero_cost()));
    let nvme = overhead_point(Some(WalConfig::nvme()));
    for (label, p) in [("off", &off), ("zero-cost", &zero), ("nvme", &nvme)] {
        let tput = p.completed as f64 / (p.end_ns as f64 / 1e9) / 1000.0;
        t.row(&[
            &"overhead",
            &label,
            &p.completed,
            &f2(p.wal_bytes as f64 / 1024.0),
            &p.wal_records,
            &0u64,
            &format!("{:.1}krps", tput),
        ]);
    }
    t.finish();

    // The zero-cost contract: full WAL bookkeeping, bit-identical
    // schedule. This is what lets DM_DURABLE=1 regenerate every CSV
    // byte-for-byte (CI `results-deterministic`).
    assert_eq!(
        (off.completed, off.end_ns, off.polls),
        (zero.completed, zero.end_ns, zero.polls),
        "zero-cost durability perturbed the schedule"
    );
    assert!(zero.wal_records > 0, "durable run logged nothing");
    println!(
        "  zero-cost durability: schedule identical to durability-off \
         ({} completions, {} polls) with {} records logged",
        zero.completed, zero.polls, zero.wal_records
    );
}
