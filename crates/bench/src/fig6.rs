//! Fig. 6 — application-layer load balancer: (a) aggregate throughput and
//! (b) LB-server memory-bandwidth occupation versus request size.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::load_balancer::build_lb;
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

use crate::report::{f2, render_bars, size_label, Table};

/// Request sizes swept (paper: 4 K to 32 K).
pub const SIZES: [usize; 4] = [4096, 8192, 16384, 32768];

fn run_point(kind: SystemKind, size: usize) -> (f64, f64, f64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 6);
        let app = Rc::new(build_lb(&cluster, 3, 3).await);
        let payload = Bytes::from(vec![3u8; size]);
        app.request(0, &payload).await.expect("warmup");
        cluster.reset_stats();
        app.lb_node.mem.reset_stats();
        let window = Duration::from_millis(4);
        let m = run_closed_loop(
            24, // 8 outstanding per generator
            Duration::from_micros(200),
            window,
            Rc::new(move |w, _i| {
                let app = app.clone();
                let payload = payload.clone();
                async move { app.request(w % 3, &payload).await }
            }),
        )
        .await;
        let tput_gbps = m.throughput_gbps(size as u64);
        // Memory-bandwidth occupation on the LB node over the whole run
        // (warmup traffic was cleared by the reset above).
        let elapsed = Duration::from_micros(200) + window;
        (
            m.throughput_rps() / 1e3,
            tput_gbps,
            lb_bandwidth_gbs(&cluster, elapsed),
        )
    })
}

/// LB-server memory bandwidth in GB/s (the LB node is named "lb").
pub fn lb_bandwidth_gbs(cluster: &Cluster, elapsed: Duration) -> f64 {
    for s in cluster.servers() {
        if cluster.net.node_name(s.id) == "lb" {
            return s.mem.bandwidth_occupation(elapsed) / 1e9;
        }
    }
    0.0
}

/// Run the experiment and emit `results/fig6_loadbalancer.csv`. The
/// (size, system) cells are independent simulations fanned out across
/// `SIM_THREADS` workers; rows assemble in sweep order, so the CSV is
/// byte-identical at every thread count.
pub fn run() {
    let cells: Vec<(usize, SystemKind)> = SIZES
        .iter()
        .flat_map(|&size| SystemKind::ALL.into_iter().map(move |kind| (size, kind)))
        .collect();
    let measured = crate::pool::scoped_map(cells.len(), crate::pool::sim_threads(), |i| {
        let (size, kind) = cells[i];
        run_point(kind, size)
    });

    let mut t = Table::new(
        "fig6_loadbalancer",
        &[
            "req_size",
            "system",
            "throughput_krps",
            "throughput_gbps",
            "lb_mem_bw_gbs",
        ],
    );
    let mut bw_series: Vec<(&str, Vec<f64>)> = SystemKind::ALL
        .iter()
        .map(|k| (k.label(), Vec::new()))
        .collect();
    let mut labels = Vec::new();
    for (n, (cell, &(krps, gbps, lb_bw))) in cells.iter().zip(&measured).enumerate() {
        let (size, kind) = *cell;
        let i = n % SystemKind::ALL.len();
        if i == 0 {
            labels.push(size_label(size));
        }
        bw_series[i].1.push(lb_bw);
        t.row(&[
            &size_label(size),
            &kind.label(),
            &f2(krps),
            &f2(gbps),
            &f2(lb_bw),
        ]);
    }
    t.finish();
    render_bars("Fig. 6b LB memory bandwidth (GB/s)", &labels, &bw_series);
}
