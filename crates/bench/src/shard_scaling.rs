//! xtra_shard_scaling — DmRPC-net throughput versus number of DM shards
//! (DESIGN.md §13).
//!
//! Sweeps the sharded DM plane over 1→16 servers with the consistent-hash
//! placement on two workloads: the Fig. 10a 7-tier image pipeline (8 KB
//! images, closed loop) and the Fig. 11 DeathStarBench social network at a
//! saturating offered rate. A single DM server's NIC bounds both at N=1;
//! the ring spreads refs across shards so aggregate DM bandwidth — and
//! end-to-end throughput — grows with N until the worker/client tiers
//! take over as the bottleneck.
//!
//! Emits `results/xtra_shard_scaling.csv`, `results/BENCH_shard_scaling.json`
//! and `results/BENCH_fig_throughput.json` (headline throughput numbers
//! parsed out of the committed Fig. 10a/11 CSVs plus the shard-scaling
//! speedups). All measurements are virtual-time, so every artifact is
//! byte-deterministic and CI diffs them against the committed copies.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, DmPlacement, SystemKind};
use apps::image_pipeline::{build_pipeline, OP_COMPRESS, OP_TRANSCODE};
use apps::social::build_social;
use apps::workload::{run_closed_loop, run_open_loop};
use bytes::Bytes;
use simcore::{Sim, SimRng};

use crate::report::{f2, render_bars, Table};

/// Shard counts swept.
pub const SHARDS: [usize; 5] = [1, 2, 4, 8, 16];

/// Image size for the pipeline workload (the paper's mid-size point, where
/// the DM tier is bandwidth-bound rather than RTT-bound).
pub const IMAGE_SIZE: usize = 8192;

/// Offered rate for the social workload (past the 2-server saturation
/// knee in the committed Fig. 11 curve).
pub const SOCIAL_RATE: f64 = 1400e3;

/// Per-shard balance snapshot taken after a run.
pub struct ShardStats {
    /// Requests served per DM server.
    pub ops: Vec<u64>,
    /// MIGRATE/MIGRATE_IN operations executed per server.
    pub migrations: u64,
    /// Redirect responses served (tombstone hits) per the whole pool.
    pub redirects: u64,
}

impl ShardStats {
    fn collect(cluster: &Cluster) -> ShardStats {
        ShardStats {
            ops: cluster.dm_servers.iter().map(|s| s.ops_served()).collect(),
            migrations: cluster.dm_servers.iter().map(|s| s.migrations()).sum(),
            redirects: cluster.dm_servers.iter().map(|s| s.redirects()).sum(),
        }
    }

    /// min/max ops ratio across shards (1.0 = perfectly balanced).
    pub fn balance(&self) -> f64 {
        let min = self.ops.iter().copied().min().unwrap_or(0);
        let max = self.ops.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        min as f64 / max as f64
    }
}

fn sharded_config() -> ClusterConfig {
    ClusterConfig {
        dm_placement: DmPlacement::Sharded(dmnet::ShardConfig::default()),
        ..ClusterConfig::default()
    }
}

/// One image-pipeline cell: closed-loop throughput with `n_dm` DM shards.
pub fn run_image_point(n_dm: usize, workers: usize) -> (apps::Measured, ShardStats) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, n_dm, sharded_config(), 10);
        let app = Rc::new(build_pipeline(&cluster).await);
        // Enough generator clients that no single client NIC bounds the
        // sweep (same trick as Fig. 10a, scaled for the larger pool).
        let mut clients: Vec<Rc<dmrpc::DmRpc>> = vec![app.client.clone()];
        for i in 0..5 {
            let node = cluster.add_server(format!("client{i}"));
            clients.push(cluster.endpoint(&node, 100).await);
        }
        let clients = Rc::new(clients);
        let image = Bytes::from(vec![9u8; IMAGE_SIZE]);
        app.request(OP_TRANSCODE, &image).await.expect("warmup");
        let a2 = app.clone();
        let m = run_closed_loop(
            workers,
            Duration::from_millis(1),
            Duration::from_millis(4),
            Rc::new(move |w: usize, _i: u64| {
                let app = a2.clone();
                let client = clients[w % clients.len()].clone();
                let image = image.clone();
                let op = if w.is_multiple_of(2) {
                    OP_TRANSCODE
                } else {
                    OP_COMPRESS
                };
                async move { app.request_via(&client, op, &image).await.map(|_| ()) }
            }),
        )
        .await;
        (m, ShardStats::collect(&cluster))
    })
}

/// One social-network cell: open-loop at a saturating rate with `n_dm`
/// DM shards.
pub fn run_social_point(n_dm: usize) -> (apps::Measured, ShardStats) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(SystemKind::DmNet, n_dm, sharded_config(), 11);
        let app = Rc::new(build_social(&cluster, 500, crate::fig11::MEDIA, 3).await);
        app.preload(200).await.expect("preload");
        let a2 = app.clone();
        let m = run_open_loop(
            SOCIAL_RATE,
            Duration::from_millis(1),
            Duration::from_millis(8),
            SimRng::new(SOCIAL_RATE as u64 ^ 0xBEEF),
            Rc::new(move |_n| {
                let app = a2.clone();
                async move { app.mixed_request().await }
            }),
        )
        .await;
        (m, ShardStats::collect(&cluster))
    })
}

struct Cell {
    workload: &'static str,
    shards: usize,
    krps: f64,
    avg_us: f64,
    balance: f64,
}

fn write_bench_json(cells: &[Cell], speedup8: f64) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"shard_scaling\",\n");
    let _ = writeln!(out, "  \"image_size\": {IMAGE_SIZE},");
    let _ = writeln!(out, "  \"image_speedup_8_shards\": {speedup8:.2},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"throughput_krps\": {:.2}, \
             \"avg_us\": {:.2}, \"balance\": {:.3}}}",
            c.workload, c.shards, c.krps, c.avg_us, c.balance,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_shard_scaling.json");
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, out)) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  (bench json write failed: {e})"),
    }
}

/// Pull the DmRPC-net summary numbers out of the committed Fig. 10a and
/// Fig. 11 CSVs and fold them — plus the shard-scaling headline — into
/// `results/BENCH_fig_throughput.json`. Parsing the committed CSVs (rather
/// than re-measuring) keeps this artifact consistent with the figures by
/// construction.
fn write_fig_throughput_json(cells: &[Cell], speedup8: f64) {
    use std::fmt::Write as _;
    let dir = crate::report::results_dir();
    let read_rows = |name: &str| -> Vec<Vec<String>> {
        std::fs::read_to_string(dir.join(name))
            .map(|s| {
                s.lines()
                    .skip(1)
                    .map(|l| l.split(',').map(str::to_string).collect())
                    .collect()
            })
            .unwrap_or_default()
    };

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fig_throughput\",\n");
    // Fig. 10a: DmRPC-net krps per image size.
    out.push_str("  \"fig10a_dmrpc_net_krps\": {");
    let mut first = true;
    for row in read_rows("fig10a_image_throughput.csv") {
        if row.len() >= 3 && row[1] == "DmRPC-net" {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if first { "" } else { ", " },
                row[0],
                row[2]
            );
            first = false;
        }
    }
    out.push_str("},\n");
    // Fig. 11: DmRPC-net achieved krps at the highest offered rate.
    let fig11: Vec<Vec<String>> = read_rows("fig11_deathstarbench.csv");
    let peak = fig11.iter().rfind(|r| r.len() >= 3 && r[1] == "DmRPC-net");
    if let Some(r) = peak {
        let _ = writeln!(
            out,
            "  \"fig11_dmrpc_net_peak\": {{\"offered_krps\": {}, \"achieved_krps\": {}}},",
            r[0], r[2]
        );
    } else {
        out.push_str("  \"fig11_dmrpc_net_peak\": null,\n");
    }
    // Shard-scaling headline (this run).
    let _ = writeln!(out, "  \"shard_scaling_image_speedup_8\": {speedup8:.2},");
    out.push_str("  \"shard_scaling_krps\": {");
    let mut first = true;
    for c in cells.iter().filter(|c| c.workload == "image_8k") {
        let _ = write!(
            out,
            "{}\"{}\": {:.2}",
            if first { "" } else { ", " },
            c.shards,
            c.krps
        );
        first = false;
    }
    out.push_str("}\n}\n");
    let path = dir.join("BENCH_fig_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, out)) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  (bench json write failed: {e})"),
    }
}

/// Run the sweep and emit the three artifacts. Cells are independent
/// simulations fanned out over `SIM_THREADS`; rows assemble in sweep
/// order, so every artifact is byte-identical at any thread count.
pub fn run() {
    let threads = crate::pool::sim_threads();
    let n = SHARDS.len();
    // Image cells then social cells, one per shard count.
    let results = crate::pool::scoped_map(2 * n, threads, |i| {
        if i < n {
            let (m, s) = run_image_point(SHARDS[i], 64);
            (
                m.throughput_rps(),
                m.avg_latency_us(),
                s.balance(),
                s.migrations,
                s.redirects,
            )
        } else {
            let (m, s) = run_social_point(SHARDS[i - n]);
            (
                m.throughput_rps(),
                m.avg_latency_us(),
                s.balance(),
                s.migrations,
                s.redirects,
            )
        }
    });

    let mut cells = Vec::new();
    let mut t = Table::new(
        "xtra_shard_scaling",
        &[
            "workload",
            "dm_shards",
            "throughput_krps",
            "avg_us",
            "speedup_vs_1",
            "shard_balance",
        ],
    );
    let mut image_krps = Vec::new();
    for (w, workload) in ["image_8k", "social_mixed"].into_iter().enumerate() {
        let base = results[w * n].0;
        for (j, &shards) in SHARDS.iter().enumerate() {
            let (rps, avg, balance, migrations, redirects) = results[w * n + j];
            assert_eq!(migrations, 0, "steady-state sweep must not migrate");
            assert_eq!(redirects, 0, "steady-state sweep must not redirect");
            if w == 0 {
                image_krps.push(rps / 1e3);
            }
            t.row(&[
                &workload,
                &shards,
                &f2(rps / 1e3),
                &f2(avg),
                &f2(rps / base),
                &f2(balance),
            ]);
            cells.push(Cell {
                workload,
                shards,
                krps: rps / 1e3,
                avg_us: avg,
                balance,
            });
        }
    }
    t.finish();
    render_bars(
        "DmRPC-net image throughput (krps) vs DM shards",
        &SHARDS.iter().map(|s| format!("{s}")).collect::<Vec<_>>(),
        &[("image_8k", image_krps.clone())],
    );

    let speedup8 = image_krps[3] / image_krps[0];
    println!("\n  image_8k speedup at 8 shards vs 1: {speedup8:.2}x");
    write_bench_json(&cells, speedup8);
    write_fig_throughput_json(&cells, speedup8);
    assert!(
        speedup8 >= 3.0,
        "sharded DM plane must scale: 8-shard image throughput is only \
         {speedup8:.2}x the 1-shard number (need >= 3x)"
    );
}
