//! `xtra_rtt_budget` — control-plane round trips per app-level operation
//! on the Fig. 5 chain workload, with the DESIGN.md §9 client cache and
//! control-op coalescer off versus on.
//!
//! Every DmRPC-net operation costs wire messages to the DM pool. The data
//! plane (`put_ref`, `read_ref`, bulk reads/writes) is the payload's
//! price; the control plane (`release_ref`, `map_ref`, frees, refcount
//! traffic) is overhead the paper's address translator and ownership
//! batching amortize. This experiment counts both planes across every
//! endpoint of a chain cluster — classified by [`dmnet::proto::is_control`]
//! and summed over each endpoint's wire counters — and reports the
//! control-RTT budget per completed request, plus the cache hit/miss and
//! batching counters behind the reduction.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use dmnet::CacheConfig;
use simcore::Sim;

use crate::report::{f2, Table};

/// Argument size (paper Fig. 5: 4 KB array).
pub const ARG_SIZE: usize = 4096;

/// Wire-message and cache counters for one measured configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct RttPoint {
    /// App-level requests completed (all phases, warmup included — the
    /// wire counters span the same interval).
    pub ops: u64,
    /// Control-plane wire messages across every endpoint's DM client.
    pub ctrl: u64,
    /// Data-plane wire messages across every endpoint's DM client.
    pub data: u64,
    /// Cache hits (data reads + mapping reuses).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Entries invalidated (epoch advances + local releases).
    pub invalidations: u64,
    /// Control ops that rode a coalesced batch.
    pub batched_ops: u64,
    /// Coalesced batch envelopes sent.
    pub batches: u64,
    /// Measured throughput, krps.
    pub tput_krps: f64,
}

impl RttPoint {
    /// Control-plane wire messages per completed request.
    pub fn ctrl_per_op(&self) -> f64 {
        self.ctrl as f64 / self.ops.max(1) as f64
    }
}

/// Control-RTT reduction of `cached` versus `base`, in percent.
pub fn ctrl_reduction_pct(base: &RttPoint, cached: &RttPoint) -> f64 {
    if base.ctrl_per_op() == 0.0 {
        return 0.0;
    }
    (1.0 - cached.ctrl_per_op() / base.ctrl_per_op()) * 100.0
}

/// Run the Fig. 5 chain at `length` under `cache` and count every wire
/// message the cluster's DM clients send from the post-setup snapshot on.
pub fn run_point(length: usize, cache: CacheConfig) -> RttPoint {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = ClusterConfig {
            dm_client_cache: cache,
            ..Default::default()
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, 42);
        let app = Rc::new(build_chain(&cluster, length).await);
        let payload = Bytes::from(vec![7u8; ARG_SIZE]);
        app.request(&payload).await.expect("warmup");

        // Snapshot after setup + one warm-up request: registration and
        // warm-up traffic is excluded; everything after is attributed to
        // the counted ops.
        let clients: Vec<_> = cluster
            .endpoints()
            .iter()
            .filter_map(|ep| ep.dm().and_then(|d| d.net_client().cloned()))
            .collect();
        let totals = |clients: &[Rc<dmnet::DmNetClient>]| {
            clients.iter().fold((0u64, 0u64), |(c, d), cl| {
                let (ctrl, data) = cl.wire_messages();
                (c + ctrl, d + data)
            })
        };
        let (ctrl0, data0) = totals(&clients);
        let stats0: Vec<(u64, u64, u64, u64, u64)> = clients
            .iter()
            .map(|c| {
                let s = c.cache_stats();
                (
                    s.hits(),
                    s.misses(),
                    s.invalidations(),
                    s.batched_ops(),
                    s.batches(),
                )
            })
            .collect();

        let ops = Rc::new(Cell::new(0u64));
        let m = {
            let app = app.clone();
            let ops = ops.clone();
            run_closed_loop(
                8,
                Duration::from_micros(200),
                Duration::from_millis(2),
                Rc::new(move |_w, _i| {
                    let app = app.clone();
                    let payload = payload.clone();
                    let ops = ops.clone();
                    async move {
                        app.request(&payload).await?;
                        ops.set(ops.get() + 1);
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await
        };
        // Drain queued control ops so batched-but-unsent work is charged
        // to the configuration that queued it.
        for c in &clients {
            c.flush_cache().await;
        }

        let (ctrl1, data1) = totals(&clients);
        let mut point = RttPoint {
            ops: ops.get(),
            ctrl: ctrl1 - ctrl0,
            data: data1 - data0,
            tput_krps: m.throughput_rps() / 1e3,
            ..Default::default()
        };
        for (c, s0) in clients.iter().zip(&stats0) {
            let s = c.cache_stats();
            point.hits += s.hits() - s0.0;
            point.misses += s.misses() - s0.1;
            point.invalidations += s.invalidations() - s0.2;
            point.batched_ops += s.batched_ops() - s0.3;
            point.batches += s.batches() - s0.4;
        }
        point
    })
}

/// Run the experiment and emit `results/xtra_rtt_budget.csv`.
pub fn run() {
    let mut t = Table::new(
        "xtra_rtt_budget",
        &[
            "chain_len",
            "config",
            "ops",
            "ctrl_msgs",
            "data_msgs",
            "ctrl_per_op",
            "ctrl_reduction_pct",
            "cache_hits",
            "cache_misses",
            "batched_ops",
            "batches",
            "throughput_krps",
        ],
    );
    for length in [1usize, 3, 5] {
        let base = run_point(length, CacheConfig::default());
        let cached = run_point(length, CacheConfig::all_on());
        for (label, p, reduction) in [
            ("uncached", &base, 0.0),
            (
                "cached+batched",
                &cached,
                ctrl_reduction_pct(&base, &cached),
            ),
        ] {
            t.row(&[
                &length,
                &label,
                &p.ops,
                &p.ctrl,
                &p.data,
                &f2(p.ctrl_per_op()),
                &f2(reduction),
                &p.hits,
                &p.misses,
                &p.batched_ops,
                &p.batches,
                &f2(p.tput_krps),
            ]);
        }
    }
    t.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_and_batching_cut_control_rtts_by_a_third() {
        // The ISSUE 3 acceptance bar: >= 30% fewer control-plane round
        // trips per op on the Fig. 5 chain with caching + batching on.
        let base = run_point(3, CacheConfig::default());
        let cached = run_point(3, CacheConfig::all_on());
        assert!(base.ops > 0 && cached.ops > 0);
        assert!(base.ctrl > 0, "chain has a control-plane cost to amortize");
        let reduction = ctrl_reduction_pct(&base, &cached);
        assert!(
            reduction >= 30.0,
            "control-RTT reduction {reduction:.1}% < 30% \
             (uncached {:.3}/op, cached {:.3}/op)",
            base.ctrl_per_op(),
            cached.ctrl_per_op()
        );
        assert!(
            cached.batches > 0 && cached.batched_ops >= cached.batches,
            "batching never engaged"
        );
    }
}
