//! Fig. 7 — effect of copy-on-write versus unconditional copy on
//! `create_ref`: (a) request rate, (b) response time, (c) DM memory traffic
//! per request, versus region size.
//!
//! Setup per the paper: DmRPC-net uses **one CPU core** on a single memory
//! server with the client issuing fast enough to saturate it; DmRPC-CXL
//! uses one client thread.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use dmcommon::CopyMode;
use simcore::Sim;

use crate::report::{f2, size_label, Table};

/// Region sizes swept.
pub const SIZES: [usize; 5] = [4096, 16384, 65536, 262_144, 1_048_576];

/// One point: (rate krps, response us, traffic KB/req).
fn run_point(kind: SystemKind, copy_mode: CopyMode, size: usize) -> (f64, f64, f64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = ClusterConfig {
            copy_mode,
            dm_server_cores: 1, // paper: one core in a single memory server
            dm_capacity_pages: 1 << 20,
            ..Default::default()
        };
        let cluster = Cluster::new(kind, 1, config, 7);
        let node = cluster.add_server("client");
        let ep = cluster.endpoint(&node, 100).await;
        let dm = ep.dm().expect("dm backend").clone();

        // One shared region, written once; each op is create_ref + release.
        let addr = dm.alloc(size as u64).await.expect("alloc");
        dm.write(addr, &Bytes::from(vec![0xA5u8; size]))
            .await
            .expect("write");

        // (b) unloaded response time of a single create_ref.
        let t0 = simcore::now();
        let r = dm.create_ref(addr, size as u64).await.expect("create_ref");
        let resp_us = (simcore::now() - t0).as_nanos() as f64 / 1e3;
        dm.release_ref(&r).await.expect("release");

        // (a)+(c): saturating closed loop; concurrency high enough to keep
        // the single server core busy (net) / 1 thread for CXL.
        let workers = match kind {
            SystemKind::DmCxl => 1,
            _ => 16,
        };
        cluster.reset_stats();
        // Snapshot DM traffic exactly at the measurement window's edges so
        // warmup ops do not inflate the per-request figure.
        let warmup = Duration::from_micros(200);
        let traffic0 = Rc::new(std::cell::Cell::new(0u64));
        {
            let cluster_traffic = traffic0.clone();
            let snap = {
                let dm_servers: Vec<_> = cluster
                    .dm_servers
                    .iter()
                    .map(|s| s.memory().clone())
                    .collect();
                let gfam_traffic: Option<_> = cluster.cxl_fabric().map(|f| f.gfam().clone());
                move || -> u64 {
                    dm_servers.iter().map(|m| m.traffic_bytes()).sum::<u64>()
                        + gfam_traffic
                            .as_ref()
                            .map(|g| g.traffic_bytes())
                            .unwrap_or(0)
                }
            };
            simcore::spawn(async move {
                simcore::sleep(warmup).await;
                cluster_traffic.set(snap());
            });
        }
        let dm2 = dm.clone();
        let m = run_closed_loop(
            workers,
            warmup,
            Duration::from_millis(4),
            Rc::new(move |_w, _i| {
                let dm = dm2.clone();
                async move {
                    let r = dm.create_ref(addr, size as u64).await?;
                    dm.release_ref(&r).await
                }
            }),
        )
        .await;
        let traffic = cluster.dm_traffic_bytes().saturating_sub(traffic0.get());
        let per_req_kb = if m.completed == 0 {
            0.0
        } else {
            traffic as f64 / m.completed as f64 / 1024.0
        };
        (m.throughput_rps() / 1e3, resp_us, per_req_kb)
    })
}

/// Run the experiment and emit `results/fig7_cow.csv`.
pub fn run() {
    let mut t = Table::new(
        "fig7_cow",
        &[
            "size",
            "impl",
            "rate_krps",
            "response_us",
            "traffic_kb_per_req",
        ],
    );
    let variants: [(SystemKind, CopyMode, &str); 4] = [
        (SystemKind::DmNet, CopyMode::CopyOnWrite, "DmRPC-net"),
        (SystemKind::DmNet, CopyMode::Eager, "DmRPC-net-copy"),
        (SystemKind::DmCxl, CopyMode::CopyOnWrite, "DmRPC-CXL"),
        (SystemKind::DmCxl, CopyMode::Eager, "DmRPC-CXL-copy"),
    ];
    for size in SIZES {
        for (kind, mode, label) in variants {
            let (rate, resp, traffic) = run_point(kind, mode, size);
            t.row(&[
                &size_label(size),
                &label,
                &f2(rate),
                &f2(resp),
                &f2(traffic),
            ]);
        }
    }
    t.finish();
}
