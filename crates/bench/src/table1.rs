//! Table I — comparison of data-sharing methods. The qualitative columns
//! come from the paper; the "measured_latency_us" column backs them with a
//! 32 KB single-thread caller→callee share measurement from this
//! reproduction (the Fig. 8 micro-benchmark at 20% writes).

use apps::cluster::SystemKind;
use apps::sharebench::StoreKind;

use crate::fig8::{run_dm_point, run_store_point};
use crate::report::{f2, Table};

/// Run the table and emit `results/table1_sharing_methods.csv`.
pub fn run() {
    // Traditional RPC = eRPC pass-by-value over the same chain: model it as
    // the DmRPC-net deployment with pass-by-value semantics. We reuse the
    // chain app for an apples-to-apples "move 32 KB to the callee" number.
    let erpc_lat = {
        use apps::chain::build_chain;
        use apps::cluster::{Cluster, ClusterConfig};
        use bytes::Bytes;
        use simcore::Sim;
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(SystemKind::Erpc, 0, ClusterConfig::default(), 1);
            let app = build_chain(&cluster, 1).await;
            let payload = Bytes::from(vec![1u8; 32 * 1024]);
            app.request(&payload).await.expect("warmup");
            let t0 = simcore::now();
            app.request(&payload).await.expect("request");
            (simcore::now() - t0).as_nanos() as f64 / 1e3
        })
    };
    let (_, dmnet_lat) = run_dm_point(SystemKind::DmNet, 20, 32 * 1024);
    let (_, ray_lat) = run_store_point(StoreKind::Ray, 20, 32 * 1024);

    let mut t = Table::new(
        "table1_sharing_methods",
        &[
            "approach",
            "sharing_semantics",
            "performance",
            "mutability",
            "programming",
            "measured_latency_us",
        ],
    );
    t.row(&[
        &"Traditional RPC (eRPC)",
        &"pass-by-value",
        &"low",
        &"mutable",
        &"simple",
        &f2(erpc_lat),
    ]);
    t.row(&[
        &"DSM model",
        &"pass-by-reference",
        &"high",
        &"mutable",
        &"complex",
        &"n/a (not adoptable for RPC)",
    ]);
    t.row(&[
        &"Distributed in-memory store (Ray)",
        &"pass-by-reference",
        &"low",
        &"immutable",
        &"simple",
        &f2(ray_lat),
    ]);
    t.row(&[
        &"DmRPC (ours)",
        &"pass-by-reference",
        &"high",
        &"mutable",
        &"simple",
        &f2(dmnet_lat),
    ]);
    t.finish();
}
