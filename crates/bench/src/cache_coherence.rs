//! `xtra_cache_coherence` — client-cache hit rate under write churn: the
//! global invalidation epoch versus per-ref fine-grained coherence with
//! targeted invalidation (DESIGN.md §15).
//!
//! Under the §9 global epoch, *any* ref-releasing event on a server
//! invalidates *every* entry each of its clients cached, so even a small
//! write fraction collapses the read hit rate cluster-wide. Fine-grained
//! mode keeps a per-ref version instead: responses piggyback `(key,
//! version)` pairs for the refs they touched, the server pushes targeted
//! `INVALIDATE` messages to the read-lease holders of a ref that just
//! died, and unrelated cached entries keep serving.
//!
//! Two workloads measure the difference at the same write rate:
//!
//! * **mixed chain** — the Fig. 5 chain where reads re-send one of a
//!   fixed set of long-lived by-ref arguments (the final service's fetch
//!   is cacheable) and writes run the standard fresh-argument
//!   put/forward/release cycle, whose release churns the global epoch;
//! * **social** — the DeathStarBench mix with a capped post storage, so
//!   every steady-state compose evicts and releases the oldest post's
//!   media ref while readers fetch the recent posts of hot timelines.
//!
//! Emits `results/xtra_cache_coherence.csv` and
//! `results/BENCH_cache_coherence.json`. Cells are independent
//! simulations fanned out over `SIM_THREADS` and assembled in sweep
//! order, so both artifacts are byte-identical at every thread count.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use apps::chain::{build_chain, CHAIN_REQ};
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social_capped;
use apps::workload::run_closed_loop;
use bytes::Bytes;
use dmnet::CacheConfig;
use simcore::Sim;

use crate::report::{f2, Table};

/// Social-network population (small enough that the hot set fits the
/// 256-entry per-server cache in *both* modes — the sweep isolates
/// coherence churn, not capacity misses).
pub const USERS: u32 = 32;

/// Media payload per post. Above the one-page pass-by-reference
/// threshold, so every post is DM-backed.
pub const MEDIA: usize = 8192;

/// Post-storage capacity for the bench deployment: smaller than the
/// preload volume, so each steady-state compose evicts (and releases)
/// the oldest post's media ref.
pub const POST_CAP: usize = 160;

/// Posts preloaded before measuring (> [`POST_CAP`]: eviction churn is
/// active from the first measured compose).
pub const PRELOAD: usize = 200;

/// Compose/write percentages swept; 0 is the churn-free baseline.
pub const WRITE_PCTS: [u32; 4] = [0, 5, 10, 25];

/// The write fraction at which the ≥2× gate is evaluated.
pub const GATE_PCT: u32 = 10;

/// Minimum `fine-grained hit rate / global hit rate` at [`GATE_PCT`].
pub const MIN_HIT_RATE_RATIO: f64 = 2.0;

/// Chain length for the mixed read/write chain (Fig. 5 shape).
pub const CHAIN_LEN: usize = 3;

/// Chain argument size (paper Fig. 5: 4 KB array — exactly the by-ref
/// threshold, so arguments travel as refs).
pub const ARG_SIZE: usize = 4096;

/// Long-lived by-ref arguments the chain's read side cycles over.
pub const STABLE_REFS: usize = 16;

/// Read lease used by the fine-grained cells. Long enough that hot
/// entries are not cycled by lease expiry inside the measurement window
/// and that the server's holder directory still covers a post when the
/// capped storage evicts it; staleness on a *lost* push is still bounded
/// by it (the chaos suite exercises that path — this bench is
/// fault-free).
pub const LEASE: Duration = Duration::from_millis(10);

/// Cache/coherence counters for one measured cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct CohPoint {
    /// App-level operations completed in the measured window.
    pub ops: u64,
    /// Cache lookups served without a round trip.
    pub hits: u64,
    /// Cache lookups that went to the wire.
    pub misses: u64,
    /// Entries dropped (epoch advances, version advances, local releases).
    pub invalidations: u64,
    /// Targeted invalidation pushes received (fine-grained only).
    pub targeted_inv: u64,
    /// Epoch broadcasts observed while fine-grained (fallback path).
    pub broadcast_inv: u64,
    /// Control-plane wire messages across every endpoint's DM client.
    pub ctrl: u64,
    /// Data-plane wire messages.
    pub data: u64,
    /// Measured throughput, krps.
    pub tput_krps: f64,
}

impl CohPoint {
    /// `hits / (hits + misses)`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Control-plane wire messages per completed operation.
    pub fn ctrl_per_op(&self) -> f64 {
        self.ctrl as f64 / self.ops.max(1) as f64
    }
}

/// `fine-grained hit rate / global hit rate` for one (workload, pct) pair.
pub fn hit_rate_ratio(global: &CohPoint, fg: &CohPoint) -> f64 {
    if global.hit_rate() == 0.0 {
        f64::INFINITY
    } else {
        fg.hit_rate() / global.hit_rate()
    }
}

/// The fine-grained client config used by every fg cell (the cluster
/// derives the matching server-side `CoherenceConfig` from it).
pub fn fg_config() -> CacheConfig {
    CacheConfig {
        read_lease: LEASE,
        ..CacheConfig::fine_grained()
    }
}

fn cache_for(fine_grained: bool) -> CacheConfig {
    if fine_grained {
        fg_config()
    } else {
        CacheConfig::all_on()
    }
}

/// Deterministic per-(worker, iteration) draw — identical op sequence
/// for every cell, so the only degree of freedom is the coherence mode.
fn mix_draw(w: usize, i: u64) -> u64 {
    (w as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Collect counter deltas around `work` across every DM client of the
/// cluster, then charge queued-but-unsent control ops to the cell.
async fn measure<F, Fut>(cluster: &Cluster, work: F) -> CohPoint
where
    F: FnOnce(Rc<Cell<u64>>) -> Fut,
    Fut: std::future::Future<Output = f64>,
{
    let clients: Vec<_> = cluster
        .endpoints()
        .iter()
        .filter_map(|ep| ep.dm().and_then(|d| d.net_client().cloned()))
        .collect();
    let totals = |clients: &[Rc<dmnet::DmNetClient>]| {
        clients.iter().fold((0u64, 0u64), |(c, d), cl| {
            let (ctrl, data) = cl.wire_messages();
            (c + ctrl, d + data)
        })
    };
    let snap = |clients: &[Rc<dmnet::DmNetClient>]| -> Vec<[u64; 5]> {
        clients
            .iter()
            .map(|c| {
                let s = c.cache_stats();
                [
                    s.hits(),
                    s.misses(),
                    s.invalidations(),
                    s.targeted_inv(),
                    s.broadcast_inv(),
                ]
            })
            .collect()
    };
    let (ctrl0, data0) = totals(&clients);
    let stats0 = snap(&clients);

    let ops = Rc::new(Cell::new(0u64));
    let tput_krps = work(ops.clone()).await;
    for c in &clients {
        c.flush_cache().await;
    }

    let (ctrl1, data1) = totals(&clients);
    let mut point = CohPoint {
        ops: ops.get(),
        ctrl: ctrl1 - ctrl0,
        data: data1 - data0,
        tput_krps,
        ..Default::default()
    };
    for (s1, s0) in snap(&clients).iter().zip(&stats0) {
        point.hits += s1[0] - s0[0];
        point.misses += s1[1] - s0[1];
        point.invalidations += s1[2] - s0[2];
        point.targeted_inv += s1[3] - s0[3];
        point.broadcast_inv += s1[4] - s0[4];
    }
    point
}

/// One social cell: `write_pct`% composes (each evicting + releasing an
/// old post from the capped storage), the rest home-timeline reads.
pub fn run_social_point(write_pct: u32, fine_grained: bool) -> CohPoint {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = ClusterConfig {
            dm_client_cache: cache_for(fine_grained),
            ..Default::default()
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, 17);
        let app = Rc::new(build_social_capped(&cluster, USERS, MEDIA, 7, POST_CAP).await);
        // All writes go through a second client endpoint: the reading
        // client's cache is warmed by reads alone, so an "unrelated
        // writer" is exactly that.
        let writer_node = cluster.add_server("soc-writer");
        let writer = cluster.endpoint(&writer_node, 100).await;
        for i in 0..PRELOAD {
            app.compose_from(&writer, (i as u32) % USERS)
                .await
                .expect("preload");
        }
        // Warm every timeline once so the measured window starts from a
        // populated cache in both modes.
        for u in 0..USERS {
            app.read_home(u).await.expect("warm");
            app.read_user(u).await.expect("warm");
        }
        measure(&cluster, |ops| async move {
            let m = run_closed_loop(
                4,
                Duration::from_micros(100),
                Duration::from_millis(4),
                Rc::new(move |w: usize, i: u64| {
                    let app = app.clone();
                    let writer = writer.clone();
                    let ops = ops.clone();
                    async move {
                        let h = mix_draw(w, i);
                        let user = ((h >> 32) % USERS as u64) as u32;
                        if (h % 100) < write_pct as u64 {
                            app.compose_from(&writer, user).await?;
                        } else if (h >> 16) % 3 == 2 {
                            app.read_user(user).await?;
                        } else {
                            app.read_home(user).await?;
                        }
                        ops.set(ops.get() + 1);
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await;
            m.throughput_rps() / 1e3
        })
        .await
    })
}

/// One chain cell: reads re-send a long-lived by-ref argument down the
/// chain (the final service's fetch of it is cacheable), writes run the
/// standard fresh-argument request whose release churns the epoch.
pub fn run_chain_point(write_pct: u32, fine_grained: bool) -> CohPoint {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = ClusterConfig {
            dm_client_cache: cache_for(fine_grained),
            ..Default::default()
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, 42);
        let app = Rc::new(build_chain(&cluster, CHAIN_LEN).await);
        let payload = Bytes::from(vec![7u8; ARG_SIZE]);
        // The stable read set: long-lived by-ref arguments owned by the
        // client for the whole run.
        let mut stable = Vec::with_capacity(STABLE_REFS);
        for k in 0..STABLE_REFS {
            let data = Bytes::from(vec![(k + 1) as u8; ARG_SIZE]);
            stable.push(app.client.make_value(data).await.expect("stable ref"));
        }
        // Warm: one pass so the final service has every stable ref cached.
        for v in &stable {
            app.client
                .call(app.entry, CHAIN_REQ, v)
                .await
                .expect("warm read");
        }
        app.request(&payload).await.expect("warm write");
        let stable = Rc::new(stable);
        measure(&cluster, |ops| async move {
            let m = run_closed_loop(
                4,
                Duration::from_micros(200),
                Duration::from_millis(2),
                Rc::new(move |w: usize, i: u64| {
                    let app = app.clone();
                    let payload = payload.clone();
                    let stable = stable.clone();
                    let ops = ops.clone();
                    async move {
                        let h = mix_draw(w, i);
                        if (h % 100) < write_pct as u64 {
                            app.request(&payload).await?;
                        } else {
                            let v = &stable[(h >> 32) as usize % STABLE_REFS];
                            app.client
                                .call(app.entry, CHAIN_REQ, v)
                                .await
                                .map_err(|_| dmcommon::DmError::Transport)?;
                        }
                        ops.set(ops.get() + 1);
                        Ok::<(), dmcommon::DmError>(())
                    }
                }),
            )
            .await;
            m.throughput_rps() / 1e3
        })
        .await
    })
}

/// Per-write-pct outcome of one workload, for the JSON artifact.
struct PairRow {
    workload: &'static str,
    pct: u32,
    global: CohPoint,
    fg: CohPoint,
}

impl PairRow {
    fn ratio(&self) -> f64 {
        hit_rate_ratio(&self.global, &self.fg)
    }
}

fn json_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.4}")
    } else {
        "null".to_string()
    }
}

fn write_bench_json(rows: &[PairRow]) {
    use std::fmt::Write as _;
    let point = |out: &mut String, p: &CohPoint| {
        let _ = write!(
            out,
            "{{\"ops\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
             \"targeted_inv\": {}, \"broadcast_inv\": {}, \"ctrl_per_op\": {:.3}}}",
            p.ops,
            p.hits,
            p.misses,
            p.hit_rate(),
            p.targeted_inv,
            p.broadcast_inv,
            p.ctrl_per_op(),
        );
    };
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"cache_coherence\",\n");
    let _ = writeln!(out, "  \"users\": {USERS},");
    let _ = writeln!(out, "  \"read_lease_us\": {},", LEASE.as_micros());
    let _ = writeln!(out, "  \"gate_write_pct\": {GATE_PCT},");
    let _ = writeln!(out, "  \"min_hit_rate_ratio\": {MIN_HIT_RATE_RATIO},");
    out.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"write_pct\": {}, \"global\": ",
            r.workload, r.pct
        );
        point(&mut out, &r.global);
        out.push_str(", \"fine_grained\": ");
        point(&mut out, &r.fg);
        let _ = write!(out, ", \"hit_rate_ratio\": {}}}", json_ratio(r.ratio()));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_cache_coherence.json");
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, out)) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  (bench json write failed: {e})"),
    }
}

fn assert_gate(row: &PairRow) {
    assert!(
        row.fg.targeted_inv > 0,
        "{} @ {}%: fine-grained cell never received a targeted \
         invalidation — coherence plane not engaged",
        row.workload,
        row.pct,
    );
    assert_eq!(
        row.fg.broadcast_inv, 0,
        "{} @ {}%: fault-free fine-grained cell fell back to epoch broadcast",
        row.workload, row.pct,
    );
    let ratio = row.ratio();
    assert!(
        ratio >= MIN_HIT_RATE_RATIO,
        "{} @ {}%: hit-rate gate — fine-grained {:.3} vs global {:.3} \
         ({ratio:.2}x < {MIN_HIT_RATE_RATIO}x)",
        row.workload,
        row.pct,
        row.fg.hit_rate(),
        row.global.hit_rate(),
    );
}

/// Run the sweep, emit both artifacts, and assert the ≥2× gate on both
/// workloads at [`GATE_PCT`].
pub fn run() {
    let threads = crate::pool::sim_threads();

    // Cell layout: for each workload, (global, fg) per write pct. All
    // cells are independent sims, fanned out in a fixed order.
    let specs: Vec<(&'static str, u32, bool)> = ["chain", "social"]
        .iter()
        .flat_map(|&w| {
            WRITE_PCTS
                .iter()
                .flat_map(move |&pct| [false, true].into_iter().map(move |fg| (w, pct, fg)))
        })
        .collect();
    let cells = crate::pool::scoped_map(specs.len(), threads, |i| {
        let (workload, pct, fg) = specs[i];
        match workload {
            "chain" => run_chain_point(pct, fg),
            _ => run_social_point(pct, fg),
        }
    });

    let mut rows: Vec<PairRow> = Vec::new();
    for (i, chunk) in specs.chunks(2).enumerate() {
        let (workload, pct, _) = chunk[0];
        rows.push(PairRow {
            workload,
            pct,
            global: cells[2 * i],
            fg: cells[2 * i + 1],
        });
    }

    let mut t = Table::new(
        "xtra_cache_coherence",
        &[
            "workload",
            "write_pct",
            "config",
            "ops",
            "hits",
            "misses",
            "hit_rate",
            "invalidations",
            "targeted_inv",
            "broadcast_inv",
            "ctrl_msgs",
            "ctrl_per_op",
            "throughput_krps",
        ],
    );
    for r in &rows {
        for (label, p) in [("global_epoch", &r.global), ("fine_grained", &r.fg)] {
            t.row(&[
                &r.workload,
                &r.pct,
                &label,
                &p.ops,
                &p.hits,
                &p.misses,
                &f2(p.hit_rate()),
                &p.invalidations,
                &p.targeted_inv,
                &p.broadcast_inv,
                &p.ctrl,
                &f2(p.ctrl_per_op()),
                &f2(p.tput_krps),
            ]);
        }
    }
    t.finish();

    for r in rows.iter().filter(|r| r.pct == GATE_PCT) {
        println!(
            "  {} @ {GATE_PCT}% writes: global hit rate {:.2}, fine-grained {:.2} — \
             ratio {:.2}x (gate >= {MIN_HIT_RATE_RATIO}x)",
            r.workload,
            r.global.hit_rate(),
            r.fg.hit_rate(),
            r.ratio(),
        );
    }
    write_bench_json(&rows);
    for r in rows.iter().filter(|r| r.pct == GATE_PCT) {
        assert_gate(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_grained_retains_twice_the_hit_rate_under_social_churn() {
        // The ISSUE 10 acceptance bar, evaluated on the gate cells only
        // (the full sweep runs in the binary / CI).
        let global = run_social_point(GATE_PCT, false);
        let fg = run_social_point(GATE_PCT, true);
        assert!(global.ops > 0 && fg.ops > 0);
        assert!(fg.targeted_inv > 0, "targeted invalidations flowed");
        assert_eq!(fg.broadcast_inv, 0, "no broadcast fallback");
        let ratio = hit_rate_ratio(&global, &fg);
        assert!(
            ratio >= MIN_HIT_RATE_RATIO,
            "social hit-rate ratio {ratio:.2}x < {MIN_HIT_RATE_RATIO}x \
             (global {:.3}, fine-grained {:.3})",
            global.hit_rate(),
            fg.hit_rate(),
        );
    }

    #[test]
    fn fine_grained_retains_twice_the_hit_rate_on_mixed_chain() {
        let global = run_chain_point(GATE_PCT, false);
        let fg = run_chain_point(GATE_PCT, true);
        assert!(global.ops > 0 && fg.ops > 0);
        assert_eq!(fg.broadcast_inv, 0, "fault-free run must not broadcast");
        let ratio = hit_rate_ratio(&global, &fg);
        assert!(
            ratio >= MIN_HIT_RATE_RATIO,
            "chain hit-rate ratio {ratio:.2}x < {MIN_HIT_RATE_RATIO}x \
             (global {:.3}, fine-grained {:.3})",
            global.hit_rate(),
            fg.hit_rate(),
        );
    }
}
