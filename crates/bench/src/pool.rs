//! Shared scoped thread-pool: the one parallelism idiom for every bench
//! harness.
//!
//! PR 3's chaos sweep introduced round-robin work assignment over
//! `std::thread::scope` with results merged in index order, gated on
//! byte-identical per-seed fingerprints. This module extracts that idiom
//! so the chaos sweep, the per-figure cell parallelism (`SIM_THREADS`),
//! and the engine-scaling runs all share one implementation: work item
//! `i` runs on thread `i mod threads`, and results come back in index
//! order, so output (tables, CSVs, fingerprints) never depends on the
//! thread count.

/// Run `f(i)` for every `i in 0..n` across up to `threads` scoped OS
/// threads and return the results in index order. Each worker owns its
/// indices exclusively (`i mod threads`), so `f` needs no locking for
/// per-item state; panics in `f` propagate to the caller.
///
/// `threads <= 1` (or `n <= 1`) degrades to a plain serial loop on the
/// calling thread — the zero-risk default.
pub fn scoped_map<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (t..n)
                        .step_by(threads)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// Threads for simulation-cell parallelism: the `SIM_THREADS` env
/// variable, default **1** (serial). Every figure harness routes its
/// independent simulation cells through [`scoped_map`] with this count;
/// results are deterministic at any value, so raising it only trades
/// memory for wall time.
pub fn sim_threads() -> usize {
    std::env::var("SIM_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Threads for the chaos seed sweep: `CHAOS_THREADS` env override, else
/// the machine's available parallelism (the sweep's historical default —
/// it is gated end-to-end on per-seed fingerprints, so it defaults wide).
pub fn chaos_threads() -> usize {
    std::env::var("CHAOS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order_at_any_thread_count() {
        let serial = scoped_map(17, 1, |i| i * i);
        for threads in [2, 3, 8, 32] {
            assert_eq!(scoped_map(17, threads, |i| i * i), serial);
        }
        assert_eq!(scoped_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            scoped_map(4, 2, |i| {
                if i == 3 {
                    panic!("boom {i}");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
