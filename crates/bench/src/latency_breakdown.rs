//! xtra — per-RPC latency breakdown from the telemetry subsystem: where a
//! Fig. 5 chain request's end-to-end latency goes, per system, at chain
//! length 3 with the paper's 4 KB argument.
//!
//! Every request is head-sampled (1-in-1), its span tree analyzed by the
//! deepest-span-wins sweep ([`telemetry::analyze_trace`]), and the
//! per-category averages written to `results/xtra_latency_breakdown.csv`.
//! The sweep attributes every instant to exactly one category, so each
//! row's category columns sum to its end-to-end latency — asserted here
//! and unit-tested in `tests/telemetry_tracing.rs`.

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use bytes::Bytes;
use simcore::Sim;
use telemetry::{analyze_trace, average, roots, Breakdown, Category, SpanKind};

use crate::report::{f2, Table};

/// Chain length measured (three services, as in the ISSUE's Fig. 5 cut).
pub const CHAIN_LEN: usize = 3;
/// Argument size (paper: 4 KB array).
pub const ARG_SIZE: usize = 4096;
/// Traced steady-state requests averaged per system.
pub const REQUESTS: usize = 24;

/// Run the traced chain on one system and return the averaged breakdown.
pub fn measure(kind: SystemKind) -> Breakdown {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 42);
        let tracer = cluster.enable_tracing(7, 1);
        let app = build_chain(&cluster, CHAIN_LEN).await;
        let payload = Bytes::from(vec![7u8; ARG_SIZE]);
        app.request(&payload).await.expect("warmup");
        // Let the warmup's deferred-release tail drain, then drop its
        // spans so only steady-state requests are averaged.
        simcore::sleep(std::time::Duration::from_millis(2)).await;
        tracer.clear();
        for _ in 0..REQUESTS {
            app.request(&payload).await.expect("chain request");
        }
        simcore::sleep(std::time::Duration::from_millis(2)).await;
        let records = tracer.records();
        let items: Vec<Breakdown> = roots(&records)
            .iter()
            .filter(|r| r.kind == SpanKind::Request)
            .filter_map(|r| analyze_trace(&records, r.trace_id))
            .collect();
        assert_eq!(items.len(), REQUESTS, "every request sampled and retained");
        average(&items)
    })
}

/// Run the experiment and emit `results/xtra_latency_breakdown.csv`.
pub fn run() {
    let mut headers = vec!["system", "total_us"];
    for c in Category::ALL {
        headers.push(c.label());
    }
    let mut t = Table::new("xtra_latency_breakdown", &headers);
    for kind in SystemKind::ALL {
        let b = measure(kind);
        let sum = b.category_sum();
        let drift = (sum as f64 - b.total_ns as f64).abs();
        assert!(
            drift <= b.total_ns as f64 * 0.01,
            "{}: category sum {sum} vs total {} (> 1% apart)",
            kind.label(),
            b.total_ns
        );
        let label = kind.label();
        let total_us = f2(b.total_ns as f64 / 1e3);
        let cats: Vec<String> = Category::ALL
            .iter()
            .map(|&c| f2(b.get(c) as f64 / 1e3))
            .collect();
        let mut row: Vec<&dyn std::fmt::Display> = vec![&label, &total_us];
        for c in &cats {
            row.push(c);
        }
        t.row(&row);
    }
    t.finish();
}
