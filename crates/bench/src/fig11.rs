//! Fig. 11 — DeathStarBench social network: average, p99 and p99.9 latency
//! versus offered request rate, eRPC vs DmRPC-net, mixed 60/30/10 workload.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social;
use apps::workload::run_open_loop;
use simcore::{Sim, SimRng};

use crate::report::{f2, render_bars, Table};

/// Offered rates swept (requests/second).
pub const RATES: [f64; 9] = [
    50e3, 100e3, 200e3, 300e3, 400e3, 500e3, 700e3, 1000e3, 1400e3,
];

/// Media payload per post.
pub const MEDIA: usize = 8192;

/// One point: measured stats at an offered rate.
pub fn run_point(kind: SystemKind, rate: f64) -> apps::Measured {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 11);
        let app = Rc::new(build_social(&cluster, 500, MEDIA, 3).await);
        app.preload(200).await.expect("preload");
        let a2 = app.clone();
        run_open_loop(
            rate,
            Duration::from_millis(1),
            Duration::from_millis(8),
            SimRng::new(rate as u64 ^ 0xBEEF),
            Rc::new(move |_n| {
                let app = a2.clone();
                async move { app.mixed_request().await }
            }),
        )
        .await
    })
}

/// Run the experiment and emit `results/fig11_deathstarbench.csv`. The
/// (rate, system) cells are independent simulations fanned out across
/// `SIM_THREADS` workers; rows assemble in sweep order, so the CSV is
/// byte-identical at every thread count.
pub fn run() {
    const KINDS: [SystemKind; 2] = [SystemKind::Erpc, SystemKind::DmNet];
    let cells: Vec<(f64, SystemKind)> = RATES
        .iter()
        .flat_map(|&rate| KINDS.into_iter().map(move |kind| (rate, kind)))
        .collect();
    let measured = crate::pool::scoped_map(cells.len(), crate::pool::sim_threads(), |i| {
        let (rate, kind) = cells[i];
        let m = run_point(kind, rate);
        (
            m.throughput_rps(),
            m.avg_latency_us(),
            m.latency_us(0.99),
            m.latency_us(0.999),
        )
    });

    let mut t = Table::new(
        "fig11_deathstarbench",
        &[
            "offered_krps",
            "system",
            "achieved_krps",
            "avg_us",
            "p99_us",
            "p999_us",
        ],
    );
    let mut lat_series: Vec<(&str, Vec<f64>)> =
        KINDS.iter().map(|k| (k.label(), Vec::new())).collect();
    let mut labels = Vec::new();
    for (n, (cell, &(rps, avg, p99, p999))) in cells.iter().zip(&measured).enumerate() {
        let (rate, kind) = *cell;
        let i = n % KINDS.len();
        if i == 0 {
            labels.push(format!("{}k", rate as u64 / 1000));
        }
        lat_series[i].1.push(avg);
        t.row(&[
            &f2(rate / 1e3),
            &kind.label(),
            &f2(rps / 1e3),
            &f2(avg),
            &f2(p99),
            &f2(p999),
        ]);
    }
    t.finish();
    render_bars(
        "Fig. 11 avg latency (us) vs offered rate",
        &labels,
        &lat_series,
    );
}
