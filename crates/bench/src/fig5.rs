//! Fig. 5 — nested RPC calls: throughput (a) and average latency (b) versus
//! chain length, 4 KB argument.

use std::rc::Rc;
use std::time::Duration;

use apps::chain::build_chain;
use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::run_closed_loop;
use bytes::Bytes;
use simcore::Sim;

use crate::report::{f2, render_bars, Table};

/// Argument size (paper: 4 KB array).
pub const ARG_SIZE: usize = 4096;

/// One measurement: (throughput krps, avg latency us).
fn run_point(kind: SystemKind, length: usize, workers: usize, window: Duration) -> (f64, f64) {
    let sim = Sim::new();
    sim.block_on(async move {
        let cluster = Cluster::new(kind, 2, ClusterConfig::default(), 42);
        let app = Rc::new(build_chain(&cluster, length).await);
        let payload = Bytes::from(vec![7u8; ARG_SIZE]);
        // Warm up one request to fault everything in.
        app.request(&payload).await.expect("warmup");
        let m = run_closed_loop(
            workers,
            Duration::from_micros(200),
            window,
            Rc::new(move |_w, _i| {
                let app = app.clone();
                let payload = payload.clone();
                async move { app.request(&payload).await.map(|_| ()) }
            }),
        )
        .await;
        (m.throughput_rps() / 1e3, m.avg_latency_us())
    })
}

/// Run the experiment and emit `results/fig5_nested.csv`. The
/// (chain length, system) cells are independent simulations fanned out
/// across `SIM_THREADS` workers; rows assemble in sweep order, so the
/// CSV is byte-identical at every thread count.
pub fn run() {
    let cells: Vec<(usize, SystemKind)> = (1..=7usize)
        .flat_map(|length| SystemKind::ALL.into_iter().map(move |kind| (length, kind)))
        .collect();
    let measured = crate::pool::scoped_map(cells.len(), crate::pool::sim_threads(), |i| {
        let (length, kind) = cells[i];
        let (tput, lat_loaded) = run_point(kind, length, 16, Duration::from_millis(4));
        let (_, lat_unloaded) = run_point(kind, length, 1, Duration::from_millis(1));
        (tput, lat_loaded, lat_unloaded)
    });

    let mut t = Table::new(
        "fig5_nested",
        &[
            "chain_len",
            "system",
            "throughput_krps",
            "avg_latency_us_loaded",
            "avg_latency_us_unloaded",
        ],
    );
    let mut tput_series: Vec<(&str, Vec<f64>)> = SystemKind::ALL
        .iter()
        .map(|k| (k.label(), Vec::new()))
        .collect();
    let mut labels = Vec::new();
    for (n, (cell, &(tput, lat_loaded, lat_unloaded))) in cells.iter().zip(&measured).enumerate() {
        let (length, kind) = *cell;
        let i = n % SystemKind::ALL.len();
        if i == 0 {
            labels.push(format!("{length} calls"));
        }
        tput_series[i].1.push(tput);
        t.row(&[
            &length,
            &kind.label(),
            &f2(tput),
            &f2(lat_loaded),
            &f2(lat_unloaded),
        ]);
    }
    t.finish();
    render_bars("Fig. 5a throughput (krps)", &labels, &tput_series);
}
