//! Executor self-benchmark: wall-clock throughput of the simulation engine.
//!
//! Unlike the `fig*` experiments, which report *virtual-time* results, this
//! measures how fast the reproduction itself runs: task polls per second of
//! real time across scenarios that stress each hot path of the scheduler —
//! timers, ready-queue wakeups, task churn, and the full RPC stack.
//! `results/xtra_sim_throughput.csv` records the numbers; they are
//! machine-dependent and exist to track engine-performance regressions.

use crate::report::{f2, Table};
use bytes::Bytes;
use simcore::par::{run_partitioned, ParConfig, ParOutcome, PartitionBuilder};
use simcore::sync::mpsc;
use simcore::Sim;
use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

struct Outcome {
    polls: u64,
    wall: Duration,
}

fn measure(build: impl Fn(&Sim)) -> Outcome {
    // One warmup run, then the timed run.
    let warm = Sim::new();
    build(&warm);
    warm.run();
    let sim = Sim::new();
    let start = Instant::now();
    build(&sim);
    sim.run();
    let wall = start.elapsed();
    Outcome {
        polls: sim.poll_count(),
        wall,
    }
}

/// Pure timer path: 200 tasks sleeping 500 times each, deadlines interleaved.
fn timer_storm(sim: &Sim) {
    for i in 0..200u64 {
        sim.spawn(async move {
            for j in 0..500u64 {
                simcore::sleep(Duration::from_nanos(i * 13 + j * 97 + 1)).await;
            }
        });
    }
}

/// Pure wakeup path: 64 channel ping-pong pairs, 1000 rounds each. No timers,
/// so every event is a ready-queue push + task poll.
fn pingpong(sim: &Sim) {
    for _ in 0..64 {
        let (atx, mut arx) = mpsc::channel::<u32>();
        let (btx, mut brx) = mpsc::channel::<u32>();
        sim.spawn(async move {
            let _ = atx.send(0);
            while let Some(v) = brx.recv().await {
                if v >= 1000 {
                    break;
                }
                let _ = atx.send(v + 1);
            }
        });
        sim.spawn(async move {
            while let Some(v) = arx.recv().await {
                if btx.send(v + 1).is_err() || v >= 1000 {
                    break;
                }
            }
        });
    }
}

/// Task churn: waves of short-lived tasks exercising spawn/complete/free.
fn spawn_churn(sim: &Sim) {
    sim.spawn(async {
        for wave in 0..200u64 {
            let handles: Vec<_> = (0..100u64)
                .map(|i| {
                    simcore::spawn(async move {
                        simcore::yield_now().await;
                        wave ^ i
                    })
                })
                .collect();
            for h in handles {
                h.await;
            }
        }
    });
}

/// Full stack: RPC echo storm through the simulated fabric, 8 clients x 200
/// calls with multi-packet payloads (fragmentation + reassembly + ACKs).
fn rpc_storm(sim: &Sim) {
    sim.spawn(async {
        let net = simnet::Network::new(simnet::FabricConfig::default(), 42);
        let sn = net.add_node("server", simnet::NicConfig::default());
        let server = rpclib::RpcBuilder::new(&net, sn, 10).build();
        server.register(1, |ctx| async move { ctx.payload });
        let server_addr = server.addr();
        let mut done = Vec::new();
        for c in 0..8 {
            let net = net.clone();
            let cn = net.add_node(format!("c{c}"), simnet::NicConfig::default());
            done.push(simcore::spawn(async move {
                let client = rpclib::RpcBuilder::new(&net, cn, 10).build();
                let payload = Bytes::from(vec![c as u8; 9000]);
                for _ in 0..200 {
                    client.call(server_addr, 1, payload.clone()).await.unwrap();
                }
            }));
        }
        for d in done {
            d.await;
        }
    });
}

/// Zero-overhead gate for the telemetry subsystem (DESIGN.md §10): with a
/// tracer installed but sampling off, the full-stack `rpc_storm` scenario
/// must take the exact same schedule (poll-count equality — installed-but-off
/// hooks may not move a single wakeup) and must not slow down by more than
/// 2% of wall time (medians of interleaved repetitions, so machine noise
/// hits both sides equally). Panics on violation; run by the CI `telemetry`
/// job via `xtra_telemetry_overhead`.
pub fn telemetry_overhead_gate() {
    fn timed(install_tracer: bool) -> Outcome {
        // Keep the tracer + its TLS installation alive for the whole run.
        let _tracing = install_tracer.then(|| {
            let t = std::rc::Rc::new(telemetry::Tracer::new(1, 0));
            let guard = t.install();
            (t, guard)
        });
        let sim = Sim::new();
        let start = Instant::now();
        rpc_storm(&sim);
        sim.run();
        Outcome {
            polls: sim.poll_count(),
            wall: start.elapsed(),
        }
    }
    timed(false);
    timed(true); // warmup both paths
    let mut off = Vec::new();
    let mut on = Vec::new();
    // Alternate which side goes first so drift (turbo, thermal) cancels.
    for i in 0..9 {
        if i % 2 == 0 {
            off.push(timed(false));
            on.push(timed(true));
        } else {
            on.push(timed(true));
            off.push(timed(false));
        }
    }
    assert_eq!(
        off[0].polls, on[0].polls,
        "an installed-but-off tracer changed the executor schedule"
    );
    let median = |v: &mut Vec<Outcome>| {
        v.sort_by_key(|o| o.wall);
        v[v.len() / 2].wall.as_secs_f64()
    };
    let (base, traced) = (median(&mut off), median(&mut on));
    let overhead_pct = (traced / base - 1.0) * 100.0;
    println!(
        "telemetry installed-but-off overhead on rpc_storm: {overhead_pct:+.2}% \
         (baseline {:.2} ms, with tracer {:.2} ms, {} polls)",
        base * 1e3,
        traced * 1e3,
        off[0].polls
    );
    assert!(
        overhead_pct <= 2.0,
        "installed-but-off telemetry slowed rpc_storm by {overhead_pct:.2}% (> 2%)"
    );
}

/// Partitions in the scaling scenario (one single-node partition each).
const PAR_PARTS: u32 = 8;
/// RPC calls issued by each partition's client.
const PAR_CALLS: u64 = 50;

/// Partitioned full-stack scenario: [`PAR_PARTS`] single-node partitions
/// in a ring; each node runs an rpclib echo server and a closed-loop
/// client calling its successor with 4 KB payloads, all traffic crossing
/// partition boundaries through the conservative window engine. Returns
/// the outcome (whose fingerprint must be thread-count invariant) and
/// the wall time.
fn par_rpc_ring(threads: usize) -> (ParOutcome<u64>, Duration) {
    fn topo() -> simnet::Network {
        let net = simnet::Network::new(simnet::FabricConfig::default(), 7);
        for i in 0..PAR_PARTS {
            net.add_node(format!("n{i}"), simnet::NicConfig::default());
        }
        net
    }
    let lookahead = topo().xpart_lookahead();
    let builders: Vec<PartitionBuilder<simnet::XDatagram, u64>> = (0..PAR_PARTS)
        .map(|part| {
            let b: PartitionBuilder<simnet::XDatagram, u64> = Box::new(move |ctx| {
                let net = topo();
                net.attach_to_partition(ctx, (0..PAR_PARTS).collect());
                let rpc = rpclib::RpcBuilder::new(&net, simnet::NodeId(part), 10).build();
                rpc.register(1, |c| async move { c.payload });
                let next = simnet::Addr {
                    node: simnet::NodeId((part + 1) % PAR_PARTS),
                    port: 10,
                };
                let ok: Rc<Cell<u64>> = Rc::new(Cell::new(0));
                let ok2 = ok.clone();
                ctx.sim().spawn(async move {
                    let payload = Bytes::from(vec![part as u8; 4096]);
                    for _ in 0..PAR_CALLS {
                        if rpc.call(next, 1, payload.clone()).await.is_ok() {
                            ok2.set(ok2.get() + 1);
                        }
                    }
                });
                Box::new(move || ok.get())
            });
            b
        })
        .collect();
    let start = Instant::now();
    let out = run_partitioned(builders, ParConfig { lookahead, threads });
    let wall = start.elapsed();
    (out, wall)
}

/// One emitted measurement, also recorded in `BENCH_sim_throughput.json`.
struct Row {
    name: String,
    threads: usize,
    polls: u64,
    wall: Duration,
}

impl Row {
    fn polls_per_sec(&self) -> f64 {
        self.polls as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Write the trajectory artifact `results/BENCH_sim_throughput.json`:
/// polls/sec and wall time per scenario plus the thread count that
/// produced it, so future PRs can track the engine-performance curve.
/// Hand-rolled JSON with a fixed field order; wall-clock numbers are
/// machine-dependent by nature, so `host_parallelism` is recorded
/// alongside them.
fn write_bench_json(rows: &[Row]) {
    use std::fmt::Write as _;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sim_throughput\",\n");
    let _ = writeln!(out, "  \"host_parallelism\": {host},");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"threads\": {}, \"polls\": {}, \
             \"wall_ms\": {:.3}, \"polls_per_sec\": {:.0}}}",
            r.name,
            r.threads,
            r.polls,
            r.wall.as_secs_f64() * 1e3,
            r.polls_per_sec(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_sim_throughput.json");
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, out)) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  (bench json write failed: {e})"),
    }
}

/// Run all scenarios — the serial engine stressors plus the partitioned
/// scaling curve at 1/2/4/8 threads — and emit
/// `results/xtra_sim_throughput.csv` + `results/BENCH_sim_throughput.json`.
/// The partitioned scenario's fingerprint is asserted identical at every
/// thread count, so this doubles as a determinism gate.
pub fn run() {
    type Scenario = (&'static str, fn(&Sim));
    let scenarios: [Scenario; 4] = [
        ("timer_storm", timer_storm),
        ("pingpong", pingpong),
        ("spawn_churn", spawn_churn),
        ("rpc_storm", rpc_storm),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for (name, build) in scenarios {
        let o = measure(build);
        rows.push(Row {
            name: name.to_string(),
            threads: 1,
            polls: o.polls,
            wall: o.wall,
        });
    }

    // Partitioned-engine scaling curve (warmup once, then one timed run
    // per thread count). Byte-identical outcomes are asserted, not
    // assumed.
    par_rpc_ring(1);
    let mut baseline_fp: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4, 8] {
        let (out, wall) = par_rpc_ring(threads);
        for p in &out.partitions {
            assert_eq!(p.result, PAR_CALLS, "every ring call must complete");
        }
        let fp = out.fingerprint();
        match &baseline_fp {
            None => baseline_fp = Some(fp),
            Some(f) => assert_eq!(
                *f, fp,
                "par_rpc_ring fingerprint diverged at {threads} threads"
            ),
        }
        rows.push(Row {
            name: "par_rpc_ring".to_string(),
            threads,
            polls: out.partitions.iter().map(|p| p.polls).sum(),
            wall,
        });
    }

    let mut t = Table::new(
        "xtra_sim_throughput",
        &["scenario", "threads", "polls", "wall_ms", "polls_per_sec"],
    );
    for r in &rows {
        t.row(&[
            &r.name,
            &r.threads,
            &r.polls,
            &f2(r.wall.as_secs_f64() * 1e3),
            &format!("{:.0}", r.polls_per_sec()),
        ]);
    }
    t.finish();
    write_bench_json(&rows);
}
