//! Executor self-benchmark: wall-clock throughput of the simulation engine.
//!
//! Unlike the `fig*` experiments, which report *virtual-time* results, this
//! measures how fast the reproduction itself runs: task polls per second of
//! real time across scenarios that stress each hot path of the scheduler —
//! timers, ready-queue wakeups, task churn, and the full RPC stack.
//! `results/xtra_sim_throughput.csv` records the numbers; they are
//! machine-dependent and exist to track engine-performance regressions.

use crate::report::{f2, Table};
use bytes::Bytes;
use simcore::sync::mpsc;
use simcore::Sim;
use std::time::{Duration, Instant};

struct Outcome {
    polls: u64,
    wall: Duration,
}

fn measure(build: impl Fn(&Sim)) -> Outcome {
    // One warmup run, then the timed run.
    let warm = Sim::new();
    build(&warm);
    warm.run();
    let sim = Sim::new();
    let start = Instant::now();
    build(&sim);
    sim.run();
    let wall = start.elapsed();
    Outcome {
        polls: sim.poll_count(),
        wall,
    }
}

/// Pure timer path: 200 tasks sleeping 500 times each, deadlines interleaved.
fn timer_storm(sim: &Sim) {
    for i in 0..200u64 {
        sim.spawn(async move {
            for j in 0..500u64 {
                simcore::sleep(Duration::from_nanos(i * 13 + j * 97 + 1)).await;
            }
        });
    }
}

/// Pure wakeup path: 64 channel ping-pong pairs, 1000 rounds each. No timers,
/// so every event is a ready-queue push + task poll.
fn pingpong(sim: &Sim) {
    for _ in 0..64 {
        let (atx, mut arx) = mpsc::channel::<u32>();
        let (btx, mut brx) = mpsc::channel::<u32>();
        sim.spawn(async move {
            let _ = atx.send(0);
            while let Some(v) = brx.recv().await {
                if v >= 1000 {
                    break;
                }
                let _ = atx.send(v + 1);
            }
        });
        sim.spawn(async move {
            while let Some(v) = arx.recv().await {
                if btx.send(v + 1).is_err() || v >= 1000 {
                    break;
                }
            }
        });
    }
}

/// Task churn: waves of short-lived tasks exercising spawn/complete/free.
fn spawn_churn(sim: &Sim) {
    sim.spawn(async {
        for wave in 0..200u64 {
            let handles: Vec<_> = (0..100u64)
                .map(|i| {
                    simcore::spawn(async move {
                        simcore::yield_now().await;
                        wave ^ i
                    })
                })
                .collect();
            for h in handles {
                h.await;
            }
        }
    });
}

/// Full stack: RPC echo storm through the simulated fabric, 8 clients x 200
/// calls with multi-packet payloads (fragmentation + reassembly + ACKs).
fn rpc_storm(sim: &Sim) {
    sim.spawn(async {
        let net = simnet::Network::new(simnet::FabricConfig::default(), 42);
        let sn = net.add_node("server", simnet::NicConfig::default());
        let server = rpclib::RpcBuilder::new(&net, sn, 10).build();
        server.register(1, |ctx| async move { ctx.payload });
        let server_addr = server.addr();
        let mut done = Vec::new();
        for c in 0..8 {
            let net = net.clone();
            let cn = net.add_node(format!("c{c}"), simnet::NicConfig::default());
            done.push(simcore::spawn(async move {
                let client = rpclib::RpcBuilder::new(&net, cn, 10).build();
                let payload = Bytes::from(vec![c as u8; 9000]);
                for _ in 0..200 {
                    client.call(server_addr, 1, payload.clone()).await.unwrap();
                }
            }));
        }
        for d in done {
            d.await;
        }
    });
}

/// Zero-overhead gate for the telemetry subsystem (DESIGN.md §10): with a
/// tracer installed but sampling off, the full-stack `rpc_storm` scenario
/// must take the exact same schedule (poll-count equality — installed-but-off
/// hooks may not move a single wakeup) and must not slow down by more than
/// 2% of wall time (medians of interleaved repetitions, so machine noise
/// hits both sides equally). Panics on violation; run by the CI `telemetry`
/// job via `xtra_telemetry_overhead`.
pub fn telemetry_overhead_gate() {
    fn timed(install_tracer: bool) -> Outcome {
        // Keep the tracer + its TLS installation alive for the whole run.
        let _tracing = install_tracer.then(|| {
            let t = std::rc::Rc::new(telemetry::Tracer::new(1, 0));
            let guard = t.install();
            (t, guard)
        });
        let sim = Sim::new();
        let start = Instant::now();
        rpc_storm(&sim);
        sim.run();
        Outcome {
            polls: sim.poll_count(),
            wall: start.elapsed(),
        }
    }
    timed(false);
    timed(true); // warmup both paths
    let mut off = Vec::new();
    let mut on = Vec::new();
    // Alternate which side goes first so drift (turbo, thermal) cancels.
    for i in 0..9 {
        if i % 2 == 0 {
            off.push(timed(false));
            on.push(timed(true));
        } else {
            on.push(timed(true));
            off.push(timed(false));
        }
    }
    assert_eq!(
        off[0].polls, on[0].polls,
        "an installed-but-off tracer changed the executor schedule"
    );
    let median = |v: &mut Vec<Outcome>| {
        v.sort_by_key(|o| o.wall);
        v[v.len() / 2].wall.as_secs_f64()
    };
    let (base, traced) = (median(&mut off), median(&mut on));
    let overhead_pct = (traced / base - 1.0) * 100.0;
    println!(
        "telemetry installed-but-off overhead on rpc_storm: {overhead_pct:+.2}% \
         (baseline {:.2} ms, with tracer {:.2} ms, {} polls)",
        base * 1e3,
        traced * 1e3,
        off[0].polls
    );
    assert!(
        overhead_pct <= 2.0,
        "installed-but-off telemetry slowed rpc_storm by {overhead_pct:.2}% (> 2%)"
    );
}

/// Run all scenarios and emit `results/xtra_sim_throughput.csv`.
pub fn run() {
    type Scenario = (&'static str, fn(&Sim));
    let scenarios: [Scenario; 4] = [
        ("timer_storm", timer_storm),
        ("pingpong", pingpong),
        ("spawn_churn", spawn_churn),
        ("rpc_storm", rpc_storm),
    ];
    let mut t = Table::new(
        "xtra_sim_throughput",
        &["scenario", "polls", "wall_ms", "polls_per_sec"],
    );
    for (name, build) in scenarios {
        let o = measure(build);
        let per_sec = o.polls as f64 / o.wall.as_secs_f64().max(1e-12);
        t.row(&[
            &name,
            &o.polls,
            &f2(o.wall.as_secs_f64() * 1e3),
            &format!("{per_sec:.0}"),
        ]);
    }
    t.finish();
}
