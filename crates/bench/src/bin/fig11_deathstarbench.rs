//! Regenerates the paper's fig11 results. See bench::fig11.
fn main() {
    bench::fig11::run();
}
