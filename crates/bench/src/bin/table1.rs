//! Regenerates the paper's table1 results. See bench::table1.
fn main() {
    bench::table1::run();
}
