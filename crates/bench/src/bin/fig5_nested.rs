//! Regenerates the paper's fig5 results. See bench::fig5.
fn main() {
    bench::fig5::run();
}
