//! Durable-tier recovery cost: replay time vs log length (with and
//! without checkpoint compaction) and the durability overhead of the
//! chain workload. See bench::recovery.
fn main() {
    bench::recovery::run();
}
