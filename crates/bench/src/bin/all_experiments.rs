//! Runs the complete evaluation: every table and figure plus the extra
//! ablations. CSVs land in `results/`.
fn main() {
    let t0 = std::time::Instant::now();
    let threads = bench::pool::sim_threads();
    println!("# DmRPC reproduction — full evaluation (SIM_THREADS={threads})");
    bench::table1::run();
    bench::fig5::run();
    bench::fig6::run();
    bench::fig7::run();
    bench::fig8::run();
    bench::fig10::run();
    bench::fig11::run();
    bench::fig12::run();
    bench::extras::run();
    bench::rtt_budget::run();
    bench::cache_coherence::run();
    bench::latency_breakdown::run();
    bench::recovery::run();
    println!(
        "\nall experiments done in {:.1}s wall time",
        t0.elapsed().as_secs_f64()
    );
}
