//! Seed-sweeping chaos harness: fault injection + invariant checks.
//! Seeds per fault class via CHAOS_SEEDS (default 100). See bench::chaos.
fn main() {
    bench::chaos::run();
}
