//! Size-aware transfer crossover ablation (paper §IV-B).
fn main() {
    bench::extras::size_threshold();
}
