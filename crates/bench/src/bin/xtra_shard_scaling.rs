//! DM-plane shard scaling sweep (DESIGN.md §13): emits
//! `results/xtra_shard_scaling.csv`, `results/BENCH_shard_scaling.json`
//! and `results/BENCH_fig_throughput.json`.

fn main() {
    bench::shard_scaling::run();
}
