//! Scale-factor sweep with open-loop overload control and SLO reporting
//! (DESIGN.md §14): emits `results/xtra_slo_scale.csv` and
//! `results/BENCH_slo_scale.json`.

fn main() {
    bench::slo_scale::run();
}
