//! DmRPC-CXL page-ownership batching ablation (paper §V-B1).
fn main() {
    bench::extras::ownership_batching();
}
