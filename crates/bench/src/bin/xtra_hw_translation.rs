//! Hardware (MMU-direct) vs software address translation (paper §V-A2
//! future work, implemented as an option).
fn main() {
    bench::extras::hw_translation();
}
