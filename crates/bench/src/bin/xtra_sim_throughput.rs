//! Engine self-benchmark: executor polls/sec wall-clock. See bench::sim_throughput.
fn main() {
    bench::sim_throughput::run();
}
