//! `scenario` — run any paper workload under any system with one command.
//!
//! ```text
//! cargo run --release -p bench --bin scenario -- \
//!     --system dmnet --app chain --size 4096 --workers 16 --ms 5 --param 4
//! ```
//!
//! Options:
//!   --system  erpc | dmnet | dmcxl              (default dmnet)
//!   --app     chain | lb | image | social | share | shuffle | block
//!   --size    payload bytes                      (default 4096)
//!   --workers closed-loop concurrency            (default 16)
//!   --ms      measurement window, virtual ms     (default 5)
//!   --param   app-specific: chain length, LB workers, write %, shuffle M=R,
//!             social offered krps (open loop)    (default app-specific)
//!   --seed    RNG seed                           (default 1)
//!   --cxl-ns  CXL latency override in ns
//!   --copy    use the eager `-copy` ablation instead of COW

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::workload::{run_closed_loop, run_open_loop, Measured};
use bytes::Bytes;
use dmcommon::CopyMode;
use simcore::{Sim, SimRng};

struct Args {
    system: SystemKind,
    app: String,
    size: usize,
    workers: usize,
    window: Duration,
    param: Option<u64>,
    seed: u64,
    cxl_ns: Option<u64>,
    copy: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        system: SystemKind::DmNet,
        app: "chain".to_string(),
        size: 4096,
        workers: 16,
        window: Duration::from_millis(5),
        param: None,
        seed: 1,
        cxl_ns: None,
        copy: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: scenario [--system erpc|dmnet|dmcxl] [--app chain|lb|image|social|share|shuffle|block] \
             [--size N] [--workers N] [--ms N] [--param N] [--seed N] [--cxl-ns N] [--copy]"
        );
        std::process::exit(2);
    };
    while i < argv.len() {
        let need = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--system" => {
                args.system = match need(i).as_str() {
                    "erpc" => SystemKind::Erpc,
                    "dmnet" => SystemKind::DmNet,
                    "dmcxl" => SystemKind::DmCxl,
                    _ => usage(),
                };
                i += 2;
            }
            "--app" => {
                args.app = need(i);
                i += 2;
            }
            "--size" => {
                args.size = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--workers" => {
                args.workers = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--ms" => {
                args.window = Duration::from_millis(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--param" => {
                args.param = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--seed" => {
                args.seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--cxl-ns" => {
                args.cxl_ns = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--copy" => {
                args.copy = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    args
}

fn report(label: &str, size: usize, m: &Measured) {
    println!("\nscenario: {label}");
    println!("  completed        {}", m.completed);
    println!("  errors           {}", m.errors);
    println!("  throughput       {:.1} krps", m.throughput_rps() / 1e3);
    println!(
        "  goodput          {:.2} Gbps",
        m.throughput_gbps(size as u64)
    );
    println!("  latency avg      {:.1} us", m.avg_latency_us());
    println!("  latency p50      {:.1} us", m.latency_us(0.50));
    println!("  latency p99      {:.1} us", m.latency_us(0.99));
    println!("  latency p99.9    {:.1} us", m.latency_us(0.999));
}

fn main() {
    let a = parse_args();
    let label = format!(
        "{} / {} / {} B / {} workers / {:?} window",
        a.system.label(),
        a.app,
        a.size,
        a.workers,
        a.window
    );
    let sim = Sim::new();
    let config = ClusterConfig {
        copy_mode: if a.copy {
            CopyMode::Eager
        } else {
            CopyMode::CopyOnWrite
        },
        ..Default::default()
    };
    let m: Measured = sim.block_on(async move {
        let cluster = Cluster::new(a.system, 2, config, a.seed);
        if let Some(ns) = a.cxl_ns {
            cluster.params.set_cxl_latency(Duration::from_nanos(ns));
        }
        let warmup = Duration::from_millis(1);
        match a.app.as_str() {
            "chain" => {
                let len = a.param.unwrap_or(4) as usize;
                let app = Rc::new(apps::chain::build_chain(&cluster, len).await);
                let payload = Bytes::from(vec![7u8; a.size]);
                app.request(&payload).await.expect("warmup");
                run_closed_loop(
                    a.workers,
                    warmup,
                    a.window,
                    Rc::new(move |_w, _i| {
                        let app = app.clone();
                        let payload = payload.clone();
                        async move { app.request(&payload).await.map(|_| ()) }
                    }),
                )
                .await
            }
            "lb" => {
                let workers = a.param.unwrap_or(3) as usize;
                let app = Rc::new(apps::load_balancer::build_lb(&cluster, 3, workers).await);
                let payload = Bytes::from(vec![7u8; a.size]);
                app.request(0, &payload).await.expect("warmup");
                run_closed_loop(
                    a.workers,
                    warmup,
                    a.window,
                    Rc::new(move |w, _i| {
                        let app = app.clone();
                        let payload = payload.clone();
                        async move { app.request(w, &payload).await }
                    }),
                )
                .await
            }
            "image" => {
                let app = Rc::new(apps::image_pipeline::build_pipeline(&cluster).await);
                let image = Bytes::from(vec![7u8; a.size]);
                app.request(apps::image_pipeline::OP_TRANSCODE, &image)
                    .await
                    .expect("warmup");
                run_closed_loop(
                    a.workers,
                    warmup,
                    a.window,
                    Rc::new(move |w: usize, _i| {
                        let app = app.clone();
                        let image = image.clone();
                        let op = if w.is_multiple_of(2) {
                            apps::image_pipeline::OP_TRANSCODE
                        } else {
                            apps::image_pipeline::OP_COMPRESS
                        };
                        async move { app.request(op, &image).await.map(|_| ()) }
                    }),
                )
                .await
            }
            "social" => {
                let rate = a.param.unwrap_or(100) as f64 * 1e3;
                let app = Rc::new(apps::social::build_social(&cluster, 500, a.size, a.seed).await);
                app.preload(200).await.expect("preload");
                run_open_loop(
                    rate,
                    warmup,
                    a.window,
                    SimRng::new(a.seed),
                    Rc::new(move |_n| {
                        let app = app.clone();
                        async move { app.mixed_request().await }
                    }),
                )
                .await
            }
            "share" => {
                let pct = a.param.unwrap_or(20) as u8;
                let app = Rc::new(apps::sharebench::build_sharebench(&cluster).await);
                let block = Bytes::from(vec![7u8; a.size]);
                app.request(&block, pct).await.expect("warmup");
                run_closed_loop(
                    a.workers,
                    warmup,
                    a.window,
                    Rc::new(move |_w, _i| {
                        let app = app.clone();
                        let block = block.clone();
                        async move { app.request(&block, pct).await }
                    }),
                )
                .await
            }
            "shuffle" => {
                let mr = a.param.unwrap_or(4) as usize;
                let app = Rc::new(apps::shuffle::build_shuffle(&cluster, mr, mr).await);
                app.map_phase(a.size, a.seed).await.expect("map phase");
                run_closed_loop(
                    a.workers.min(4),
                    warmup,
                    a.window,
                    Rc::new(move |_w, _i| {
                        let app = app.clone();
                        async move { app.reduce_phase().await.map(|_| ()) }
                    }),
                )
                .await
            }
            "block" => {
                let replicas = a.param.unwrap_or(2) as usize;
                let app = Rc::new(apps::block_storage::build_block_store(&cluster, replicas).await);
                app.write_block(0, &Bytes::from(vec![1u8; a.size]))
                    .await
                    .expect("warmup");
                let size = a.size;
                run_closed_loop(
                    a.workers,
                    warmup,
                    a.window,
                    Rc::new(move |w, i| {
                        let app = app.clone();
                        async move {
                            let id = (w as u64) << 32 | i;
                            let block = Bytes::from(vec![(id % 251) as u8; size]);
                            app.write_block(id, &block).await
                        }
                    }),
                )
                .await
            }
            _ => {
                eprintln!("unknown app {:?}", a.app);
                std::process::exit(2);
            }
        }
    });
    report(&label, a.size, &m);
}
