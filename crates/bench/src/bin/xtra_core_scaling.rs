//! Core-scaling ablation (paper §VI-E linear-scaling claim).
fn main() {
    bench::extras::core_scaling();
}
