//! Regenerates the paper's fig10 results. See bench::fig10.
fn main() {
    bench::fig10::run();
}
