//! Regenerates the paper's fig7 results. See bench::fig7.
fn main() {
    bench::fig7::run();
}
