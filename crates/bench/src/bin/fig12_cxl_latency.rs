//! Regenerates the paper's fig12 results. See bench::fig12.
fn main() {
    bench::fig12::run();
}
