//! Reproduces §V-A2's translation-overhead measurement.
fn main() {
    bench::extras::translation_overhead();
}
