//! Per-RPC latency breakdown via telemetry tracing. See
//! bench::latency_breakdown.
fn main() {
    bench::latency_breakdown::run();
}
