//! Control-plane RTT budget on the Fig. 5 chain: client cache + control-op
//! coalescer (DESIGN.md §9) off versus on. See bench::rtt_budget.
fn main() {
    bench::rtt_budget::run();
}
