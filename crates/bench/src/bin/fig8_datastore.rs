//! Regenerates the paper's fig8 results. See bench::fig8.
fn main() {
    bench::fig8::run();
}
