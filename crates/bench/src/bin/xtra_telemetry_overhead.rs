//! Zero-overhead gate: installed-but-off telemetry may not change the
//! executor schedule or slow the full RPC stack by more than 2%. See
//! bench::sim_throughput::telemetry_overhead_gate.
fn main() {
    bench::sim_throughput::telemetry_overhead_gate();
}
