//! Hit-rate retention under write churn: the global invalidation epoch
//! versus per-ref fine-grained coherence (DESIGN.md §15). See
//! bench::cache_coherence.
fn main() {
    bench::cache_coherence::run();
}
