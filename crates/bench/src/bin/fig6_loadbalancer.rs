//! Regenerates the paper's fig6 results. See bench::fig6.
fn main() {
    bench::fig6::run();
}
