//! # bench — harnesses regenerating every table and figure of the paper
//!
//! Each experiment is a library module with a thin binary wrapper in
//! `src/bin/`, so `all_experiments` can run the full evaluation. Results
//! are printed as aligned tables and written to `results/*.csv`.
//!
//! | module / binary | reproduces |
//! |---|---|
//! | `table1` | Table I (qualitative + measured backing) |
//! | `fig5` | Fig. 5a/b nested RPC calls |
//! | `fig6` | Fig. 6a/b application-layer load balancer |
//! | `fig7` | Fig. 7a/b/c copy-on-write vs unconditional copy |
//! | `fig8` | Fig. 8a/b vs Ray/Spark |
//! | `fig10` | Fig. 10a/b 7-tier cloud image processing |
//! | `fig11` | Fig. 11 DeathStarBench |
//! | `fig12` | Fig. 12a/b CXL latency sensitivity |
//! | `extras` | §V-A2 translation overhead, size-threshold and ownership-batching ablations |
//! | `chaos` | seed-swept fault injection with invariant checks (DESIGN.md §8) |
//! | `recovery` | durable-tier recovery cost + zero-cost durability contract (DESIGN.md §12) |
//! | `rtt_budget` | control-plane RTTs/op with the §9 client cache + coalescer off vs on |
//! | `latency_breakdown` | per-RPC latency attribution from the telemetry span trees (§10) |
//! | `slo_scale` | scale-factor sweep (1k→1M users) with overload control + SLO knees (§14) |
//! | `cache_coherence` | hit-rate retention under write churn: global epoch vs per-ref coherence (§15) |

#![warn(missing_docs)]

pub mod cache_coherence;
pub mod chaos;
pub mod extras;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod latency_breakdown;
pub mod pool;
pub mod recovery;
pub mod report;
pub mod rtt_budget;
pub mod shard_scaling;
pub mod sim_throughput;
pub mod slo_scale;
pub mod table1;
