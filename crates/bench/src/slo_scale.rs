//! xtra_slo_scale — million-user scale-factor sweep with open-loop
//! overload control and SLO reporting (DESIGN.md §14).
//!
//! Phase 1 drives the DeathStarBench social workload over synthetic
//! populations of `SF × 1000` users ([`loadgen::Population`]: ~100
//! follows/user, ~50 posts/user, Zipf(0.99) hot keys, byte-reproducible
//! at any `SIM_THREADS`) at a ladder of offered rates and finds, per SF,
//! the **knee**: the highest rate that still meets the SLO (p99 from
//! intended arrival ≤ [`SLO_BUDGET`], ≥99% of issued requests completed
//! within budget).
//!
//! Phase 2 then offers 2× and 8× each knee with the overload-control
//! plane OFF (historical behaviour: the compose fan-out re-enters the
//! service tier's CPU queue ~100 times per request, so queue waits
//! amplify ~100× and SLO goodput collapses under deep overload) and ON
//! (front-door admission + CoDel shedding at nginx, bounded DM-server
//! admission, client token limiting): shed requests fail fast with a
//! typed `Busy`, the admitted remainder stays near knee latency, and SLO
//! goodput plateaus instead of collapsing. The binary asserts the ON
//! cell retains ≥50% of the knee's SLO goodput at 2× for every SF, and
//! still holds that plateau at 8×.
//!
//! Emits `results/xtra_slo_scale.csv` and `results/BENCH_slo_scale.json`.
//! Cells fan out over `SIM_THREADS`; rows assemble in sweep order, so
//! both artifacts are byte-identical at every thread count.

use std::rc::Rc;
use std::time::Duration;

use apps::cluster::{Cluster, ClusterConfig, SystemKind};
use apps::social::build_social_scaled;
use apps::workload::run_open_loop_classified;
use dmcommon::DmError;
use dmnet::{AdmissionConfig, ClientLimitConfig};
use loadgen::Population;
use simcore::{Sim, SimRng};
use telemetry::{SloBudget, SloReport};

use crate::report::{f2, render_bars, Table};

/// Scale factors swept: 1k → 1M users.
pub const SCALE_FACTORS: [u32; 4] = [1, 10, 100, 1000];

/// Offered-rate ladder (requests/second) for the knee search.
pub const RATES: [f64; 6] = [50e3, 100e3, 150e3, 200e3, 250e3, 300e3];

/// The p99 latency budget. Reads sit near ~15µs at low load; composes
/// fan out to ~100 followers and dominate the tail, so the budget is set
/// a comfortable margin above the no-load compose latency.
pub const SLO_BUDGET: Duration = Duration::from_micros(500);

/// Population seed (decoupled from the sim seed so the workload is pinned
/// by `SF` alone).
pub const POP_SEED: u64 = 42;

/// Media payload per post (matches Fig. 11).
pub const MEDIA: usize = 8192;

const WARMUP: Duration = Duration::from_millis(1);
const WINDOW: Duration = Duration::from_millis(5);

/// Knee multiples driven in phase 2 (overload ON vs OFF at each).
pub const OVERLOAD_MULTIPLES: [f64; 2] = [2.0, 8.0];

/// Per-SF overload outcome, for the JSON artifact.
struct Degradation {
    sf: u32,
    off2: f64,
    on2: f64,
    retained: f64,
    off8: f64,
    on8: f64,
}

/// Overload-control plane configuration for one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overload {
    /// No admission anywhere — the historical open-loop behaviour.
    Off,
    /// Front-door admission + CoDel at nginx, bounded DM-server
    /// admission, client-side token limiting with Busy retries.
    On,
}

impl Overload {
    fn label(self) -> &'static str {
        match self {
            Overload::Off => "off",
            Overload::On => "on",
        }
    }
}

/// Front-door admission at nginx: bound the end-to-end inflight window
/// and shed when sojourn stays above target for a full interval. The
/// inflight cap is the binding mechanism — bounding end-to-end
/// concurrency bounds every downstream CPU queue the compose fan-out
/// re-enters; CoDel is the backstop for sustained sojourn inflation.
/// (Also used by the chaos `slo-social` case, so the knob values live
/// in exactly one place.)
pub fn front_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_inflight: 32,
        codel_target: Duration::from_millis(1),
        codel_interval: Duration::from_millis(2),
    }
}

/// What one cell measured, flattened for `scoped_map` transport.
pub struct CellOut {
    /// Achieved completions per second.
    pub achieved_rps: f64,
    /// Completions-within-budget per second (the SLO goodput).
    pub slo_goodput_rps: f64,
    /// `within_budget / issued`.
    pub goodput_frac: f64,
    /// Fraction of issued requests shed by overload control.
    pub rejected_frac: f64,
    /// p50 / p99 / p99.9 latency in µs.
    pub p50_us: f64,
    /// p99 latency in µs.
    pub p99_us: f64,
    /// p99.9 latency in µs.
    pub p999_us: f64,
    /// Whether the SLO held.
    pub met: bool,
}

/// Golden-section search for the argmax of a unimodal `f` on `[lo, hi]`.
///
/// Classic four-point scheme: each iteration shrinks the bracket by the
/// inverse golden ratio and reuses one interior evaluation, so `iters`
/// refinements cost `iters + 2` evaluations of `f`. Returns the bracket
/// midpoint after the last refinement.
///
/// The SLO-goodput-vs-offered-load curve is unimodal (rises roughly
/// linearly to the knee, then collapses under uncontrolled overload), so
/// maximizing it over offered load finds the knee without a pinned rate
/// ladder — see [`adaptive_knee`].
pub fn golden_section_max(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, iters: usize) -> f64 {
    assert!(hi > lo, "degenerate bracket");
    let invphi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (lo, hi);
    let mut c = hi - invphi * (hi - lo);
    let mut d = lo + invphi * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iters {
        if fc >= fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - invphi * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + invphi * (hi - lo);
            fd = f(d);
        }
    }
    (lo + hi) / 2.0
}

/// Adaptive knee search for one SF: golden-section over offered load in
/// `[RATES.first(), RATES.last()]`, with overload control off. A cell
/// that holds the SLO scores its goodput (which rises with offered load);
/// a cell that misses scores `-rate`, so past the knee the objective
/// falls monotonically and the whole curve stays unimodal. The search
/// therefore converges on the highest load that still meets the SLO —
/// the knee — rather than on the raw-goodput peak, which sits well past
/// it. The reported knee is the best *evaluated* rate, not the final
/// bracket midpoint: the midpoint is never itself measured and can sit a
/// hair past the boundary. Returns `(knee_rate, knee_cell)`.
pub fn adaptive_knee(sf: u32, iters: usize) -> (f64, CellOut) {
    let mut best: Option<(f64, f64)> = None; // (score, rate)
    golden_section_max(
        |rate| {
            let c = run_point(sf, rate, Overload::Off);
            let score = if c.met { c.slo_goodput_rps } else { -rate };
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, rate));
            }
            score
        },
        RATES[0],
        RATES[RATES.len() - 1],
        iters,
    );
    let knee = best
        .expect("golden-section evaluates at least two points")
        .1;
    let cell = run_point(sf, knee, Overload::Off);
    (knee, cell)
}

/// `SLO_ADAPTIVE=1` sweep: per-SF golden-section knees, written to their
/// own (uncommitted) artifact stem. The default pinned-ladder sweep in
/// [`run`] is untouched, so the committed `xtra_slo_scale.csv` stays
/// byte-identical.
fn run_adaptive() {
    let threads = crate::pool::sim_threads();
    let out = crate::pool::scoped_map(SCALE_FACTORS.len(), threads, |i| {
        adaptive_knee(SCALE_FACTORS[i], 8)
    });
    let mut t = Table::new(
        "xtra_slo_scale_adaptive",
        &[
            "sf",
            "users",
            "knee_krps",
            "slo_goodput_krps",
            "goodput_frac",
            "p99_us",
            "slo_met",
        ],
    );
    for (&sf, (knee, c)) in SCALE_FACTORS.iter().zip(&out) {
        println!(
            "  SF {sf}: adaptive knee {:.1} krps, SLO goodput {:.1} krps (p99 {:.0}us)",
            knee / 1e3,
            c.slo_goodput_rps / 1e3,
            c.p99_us,
        );
        t.row(&[
            &sf,
            &(sf * loadgen::USERS_PER_SF),
            &f2(knee / 1e3),
            &f2(c.slo_goodput_rps / 1e3),
            &f2(c.goodput_frac),
            &f2(c.p99_us),
            &(c.met as u8),
        ]);
    }
    t.finish();
}

/// One (SF, rate, overload) cell: an independent simulation.
pub fn run_point(sf: u32, rate: f64, overload: Overload) -> CellOut {
    let sim = Sim::new();
    sim.block_on(async move {
        let config = match overload {
            Overload::Off => ClusterConfig::default(),
            Overload::On => ClusterConfig {
                dm_admission: Some(AdmissionConfig::default()),
                dm_client_limit: ClientLimitConfig::enabled(),
                ..ClusterConfig::default()
            },
        };
        let cluster = Cluster::new(SystemKind::DmNet, 2, config, 11);
        let pop = Population::new(sf, POP_SEED);
        let front = match overload {
            Overload::Off => None,
            Overload::On => Some(front_admission()),
        };
        let app = Rc::new(build_social_scaled(&cluster, pop, MEDIA, 3, front).await);
        app.preload(200).await.expect("preload");
        let a2 = app.clone();
        let m = run_open_loop_classified(
            rate,
            WARMUP,
            WINDOW,
            SimRng::new(rate as u64 ^ (sf as u64) << 32 ^ 0xBEEF),
            Rc::new(move |_n| {
                let app = a2.clone();
                async move { app.mixed_request().await }
            }),
            Rc::new(|e: &DmError| matches!(e, DmError::Busy)),
        )
        .await;
        let slo = SloReport::evaluate(&m.latency, m.issued, SloBudget::p99(SLO_BUDGET));
        CellOut {
            achieved_rps: m.throughput_rps(),
            slo_goodput_rps: m.goodput_rps(SLO_BUDGET),
            goodput_frac: slo.goodput,
            rejected_frac: if m.issued == 0 {
                0.0
            } else {
                m.rejected as f64 / m.issued as f64
            },
            p50_us: slo.p50_ns as f64 / 1e3,
            p99_us: slo.p99_ns as f64 / 1e3,
            p999_us: slo.p999_ns as f64 / 1e3,
            met: slo.met,
        }
    })
}

fn write_bench_json(knees: &[(u32, f64, f64)], degradation: &[Degradation]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"slo_scale\",\n");
    let _ = writeln!(out, "  \"slo_p99_us\": {},", SLO_BUDGET.as_micros());
    let _ = writeln!(out, "  \"users_per_sf\": {},", loadgen::USERS_PER_SF);
    out.push_str("  \"knees\": [\n");
    for (i, (sf, rate, goodput)) in knees.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"sf\": {}, \"users\": {}, \"knee_krps\": {:.2}, \"knee_slo_goodput_krps\": {:.2}}}",
            sf,
            sf * loadgen::USERS_PER_SF,
            rate / 1e3,
            goodput / 1e3,
        );
        out.push_str(if i + 1 < knees.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"overload\": [\n");
    for (i, d) in degradation.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"sf\": {}, \"off_2x_krps\": {:.2}, \"on_2x_krps\": {:.2}, \
             \"on_2x_retained_frac\": {:.3}, \"off_8x_krps\": {:.2}, \"on_8x_krps\": {:.2}}}",
            d.sf,
            d.off2 / 1e3,
            d.on2 / 1e3,
            d.retained,
            d.off8 / 1e3,
            d.on8 / 1e3,
        );
        out.push_str(if i + 1 < degradation.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_slo_scale.json");
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, out)) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("  (bench json write failed: {e})"),
    }
}

/// Run the sweep and emit both artifacts.
///
/// `SLO_ADAPTIVE=1` switches to the golden-section knee search, which
/// writes its own `xtra_slo_scale_adaptive.csv` (uncommitted) and skips
/// the pinned ladder entirely — the default path and its committed
/// artifacts are untouched.
pub fn run() {
    if std::env::var("SLO_ADAPTIVE").ok().as_deref() == Some("1") {
        run_adaptive();
        return;
    }
    let threads = crate::pool::sim_threads();
    let nr = RATES.len();

    // ---- phase 1: knee search (overload control OFF) ----------------------
    let cells: Vec<(u32, f64)> = SCALE_FACTORS
        .iter()
        .flat_map(|&sf| RATES.iter().map(move |&r| (sf, r)))
        .collect();
    let phase1 = crate::pool::scoped_map(cells.len(), threads, |i| {
        let (sf, rate) = cells[i];
        run_point(sf, rate, Overload::Off)
    });

    let mut t = Table::new(
        "xtra_slo_scale",
        &[
            "sf",
            "users",
            "offered_krps",
            "overload",
            "achieved_krps",
            "slo_goodput_krps",
            "goodput_frac",
            "rejected_frac",
            "p50_us",
            "p99_us",
            "p999_us",
            "slo_met",
        ],
    );
    let mut row = |sf: u32, rate: f64, mode: Overload, c: &CellOut| {
        t.row(&[
            &sf,
            &(sf * loadgen::USERS_PER_SF),
            &f2(rate / 1e3),
            &mode.label(),
            &f2(c.achieved_rps / 1e3),
            &f2(c.slo_goodput_rps / 1e3),
            &f2(c.goodput_frac),
            &f2(c.rejected_frac),
            &f2(c.p50_us),
            &f2(c.p99_us),
            &f2(c.p999_us),
            &(c.met as u8),
        ]);
    };

    // Knee per SF: highest laddered rate whose cell met the SLO.
    let mut knees: Vec<(u32, f64, f64)> = Vec::new();
    let mut knee_series = Vec::new();
    for (s, &sf) in SCALE_FACTORS.iter().enumerate() {
        let mut knee: Option<(f64, f64)> = None;
        for (j, &rate) in RATES.iter().enumerate() {
            let c = &phase1[s * nr + j];
            row(sf, rate, Overload::Off, c);
            if c.met {
                knee = Some((rate, c.slo_goodput_rps));
            }
        }
        let (rate, goodput) = knee.unwrap_or_else(|| {
            panic!("SF {sf}: no laddered rate met the SLO — ladder starts too high")
        });
        knees.push((sf, rate, goodput));
        knee_series.push(rate / 1e3);
    }

    // ---- phase 2: past the knee, overload control OFF vs ON ---------------
    // 2x knee is the acceptance point (graceful degradation); 8x knee is
    // deep overload, where the uncontrolled system's compose fan-out
    // multiplies per-pass CPU-queue waits ~100x and SLO goodput collapses.
    let cells2: Vec<(u32, f64, Overload)> = knees
        .iter()
        .flat_map(|&(sf, knee, _)| {
            OVERLOAD_MULTIPLES.iter().flat_map(move |&mult| {
                [Overload::Off, Overload::On]
                    .into_iter()
                    .map(move |m| (sf, mult * knee, m))
            })
        })
        .collect();
    let phase2 = crate::pool::scoped_map(cells2.len(), threads, |i| {
        let (sf, rate, mode) = cells2[i];
        run_point(sf, rate, mode)
    });
    for ((sf, rate, mode), c) in cells2.iter().zip(&phase2) {
        row(*sf, *rate, *mode, c);
    }
    t.finish();

    render_bars(
        "max sustainable rate (krps) holding p99 <= budget, by scale factor",
        &SCALE_FACTORS
            .iter()
            .map(|s| format!("SF{s}"))
            .collect::<Vec<_>>(),
        &[("knee_krps", knee_series)],
    );

    let per_sf = 2 * OVERLOAD_MULTIPLES.len();
    let mut degradation = Vec::new();
    for (i, &(sf, _, knee_goodput)) in knees.iter().enumerate() {
        let off2 = &phase2[per_sf * i];
        let on2 = &phase2[per_sf * i + 1];
        let off8 = &phase2[per_sf * i + 2];
        let on8 = &phase2[per_sf * i + 3];
        let retained = on2.slo_goodput_rps / knee_goodput.max(1.0);
        println!(
            "  SF {sf}: knee SLO goodput {:.1} krps; 2x knee off {:.1} / on {:.1} krps \
             ({:.0}% of knee retained); 8x knee off {:.1} / on {:.1} krps",
            knee_goodput / 1e3,
            off2.slo_goodput_rps / 1e3,
            on2.slo_goodput_rps / 1e3,
            retained * 100.0,
            off8.slo_goodput_rps / 1e3,
            on8.slo_goodput_rps / 1e3,
        );
        degradation.push(Degradation {
            sf,
            off2: off2.slo_goodput_rps,
            on2: on2.slo_goodput_rps,
            retained,
            off8: off8.slo_goodput_rps,
            on8: on8.slo_goodput_rps,
        });
    }
    write_bench_json(&knees, &degradation);

    // The controlled system must plateau: ≥50% of the knee's SLO goodput
    // retained at 2x AND at 8x the knee. (The uncontrolled OFF cells are
    // reported but not asserted — their absolute within-budget counts mix
    // the pre-collapse transient with the collapsed steady state, so only
    // their goodput_frac / p99 columns tell the collapse story.)
    for (d, &(_, _, knee_goodput)) in degradation.iter().zip(&knees) {
        assert!(
            d.retained >= 0.5,
            "SF {}: overload control must degrade gracefully at 2x knee — \
             retained only {:.0}% of knee SLO goodput ({:.0} rps)",
            d.sf,
            d.retained * 100.0,
            d.on2,
        );
        assert!(
            d.on8 >= 0.5 * knee_goodput,
            "SF {}: overload control must hold the goodput plateau at 8x knee — \
             {:.0} rps SLO goodput vs knee {:.0} rps",
            d.sf,
            d.on8,
            knee_goodput,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::golden_section_max;

    #[test]
    fn golden_section_finds_interior_maximum() {
        let x = golden_section_max(|x| -(x - 3.7) * (x - 3.7), 0.0, 10.0, 40);
        assert!((x - 3.7).abs() < 1e-6, "argmax {x} != 3.7");
    }

    #[test]
    fn golden_section_converges_to_edges_of_monotone_curves() {
        // Monotone rising: the knee sits at the top of the bracket (the
        // ladder's shape when no rate saturates the system).
        let hi = golden_section_max(|x| x, 50e3, 300e3, 30);
        assert!((hi - 300e3).abs() < 1.0, "rising argmax {hi} != hi edge");
        // Monotone falling: collapses straight onto the bottom.
        let lo = golden_section_max(|x| -x, 50e3, 300e3, 30);
        assert!((lo - 50e3).abs() < 1.0, "falling argmax {lo} != lo edge");
    }

    #[test]
    fn golden_section_evaluation_budget_is_iters_plus_two() {
        let mut calls = 0usize;
        golden_section_max(
            |x| {
                calls += 1;
                -(x - 1.0) * (x - 1.0)
            },
            0.0,
            2.0,
            8,
        );
        assert_eq!(calls, 10);
    }
}
