//! Criterion micro-benchmarks for the core data structures and the
//! simulation engine itself (wall-clock performance of the reproduction,
//! not virtual-time results — those come from the `fig*` binaries).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmcommon::va_tree::VaTree;
use dmcommon::{CopyMode, PAGE_SIZE};
use dmnet::PageManager;
use rpclib::wire::{fragment, Header, Kind, Reassembly};
use simcore::{Histogram, Sim, SimRng};
use std::hint::black_box;

fn bench_page_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_manager");
    for &pages in &[1usize, 16, 256] {
        let bytes = pages * PAGE_SIZE;
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_with_input(BenchmarkId::new("write", pages), &bytes, |b, &bytes| {
            let mut pm = PageManager::new(1024, CopyMode::CopyOnWrite);
            let pid = pm.register_process();
            let va = pm.ralloc(pid, bytes as u64).unwrap();
            let data = vec![7u8; bytes];
            b.iter(|| {
                pm.write(pid, va, black_box(&data)).unwrap();
            });
        });
        g.bench_with_input(BenchmarkId::new("read", pages), &bytes, |b, &bytes| {
            let mut pm = PageManager::new(1024, CopyMode::CopyOnWrite);
            let pid = pm.register_process();
            let va = pm.ralloc(pid, bytes as u64).unwrap();
            pm.write(pid, va, &vec![7u8; bytes]).unwrap();
            b.iter(|| black_box(pm.read(pid, va, bytes as u64).unwrap()));
        });
        g.bench_with_input(
            BenchmarkId::new("create_release_ref", pages),
            &bytes,
            |b, &bytes| {
                let mut pm = PageManager::new(1024, CopyMode::CopyOnWrite);
                let pid = pm.register_process();
                let va = pm.ralloc(pid, bytes as u64).unwrap();
                pm.write(pid, va, &vec![7u8; bytes]).unwrap();
                b.iter(|| {
                    let (key, _) = pm.create_ref(pid, va, bytes as u64).unwrap();
                    pm.release_ref(black_box(key)).unwrap();
                });
            },
        );
    }
    // One full COW fault: create ref, write one byte, tear down.
    g.bench_function("cow_fault_4k", |b| {
        let mut pm = PageManager::new(1024, CopyMode::CopyOnWrite);
        let pid = pm.register_process();
        let va = pm.ralloc(pid, PAGE_SIZE as u64).unwrap();
        pm.write(pid, va, &vec![7u8; PAGE_SIZE]).unwrap();
        b.iter(|| {
            let (key, _) = pm.create_ref(pid, va, PAGE_SIZE as u64).unwrap();
            pm.write(pid, va, black_box(&[1u8])).unwrap(); // COW copy
            pm.release_ref(key).unwrap();
        });
    });
    g.finish();
}

fn bench_va_tree(c: &mut Criterion) {
    c.bench_function("va_tree/alloc_free_cycle", |b| {
        let mut t = VaTree::new();
        // Pre-populate with fragmentation.
        let keep: Vec<u64> = (0..100)
            .map(|_| t.alloc(8192, PAGE_SIZE as u64).unwrap())
            .collect();
        for (i, &va) in keep.iter().enumerate() {
            if i % 2 == 0 {
                t.free(va).unwrap();
            }
        }
        b.iter(|| {
            let va = t.alloc(black_box(4096), PAGE_SIZE as u64).unwrap();
            t.free(va).unwrap();
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let h = Histogram::new();
        let rng = SimRng::new(1);
        b.iter(|| h.record(black_box(rng.gen_range(10_000_000))));
    });
    c.bench_function("histogram/p999", |b| {
        let h = Histogram::new();
        let rng = SimRng::new(1);
        for _ in 0..100_000 {
            h.record(rng.gen_range(10_000_000));
        }
        b.iter(|| black_box(h.p999()));
    });
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for &size in &[4096usize, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("fragment_reassemble", size),
            &size,
            |b, &size| {
                let payload = Bytes::from(vec![9u8; size]);
                b.iter(|| {
                    let pkts = fragment(Kind::Request, 1, 7, black_box(&payload), 4096, None);
                    let mut it = pkts.iter();
                    let p0 = it.next().unwrap();
                    let (h0, f0) = Header::decode_split(&p0.head, &p0.body).unwrap();
                    let mut r = Reassembly::new(&h0, f0);
                    for p in it {
                        let (h, f) = Header::decode_split(&p.head, &p.body).unwrap();
                        r.offer(&h, f);
                    }
                    black_box(r.assemble())
                });
            },
        );
    }
    g.finish();
}

fn bench_simulation_engine(c: &mut Criterion) {
    // How fast does the DES engine execute events? (events/sec wall clock)
    c.bench_function("simcore/10k_timer_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..100u64 {
                sim.spawn(async move {
                    for j in 0..100u64 {
                        simcore::sleep(std::time::Duration::from_nanos(i * 7 + j + 1)).await;
                    }
                });
            }
            sim.run();
            black_box(sim.poll_count())
        });
    });
    // A full small RPC echo through the simulated fabric.
    c.bench_function("rpc/echo_roundtrip_sim", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let out = sim.block_on(async {
                let net = simnet::Network::new(simnet::FabricConfig::default(), 1);
                let a = net.add_node("a", simnet::NicConfig::default());
                let bn = net.add_node("b", simnet::NicConfig::default());
                let server = rpclib::RpcBuilder::new(&net, bn, 10).build();
                server.register(1, |ctx| async move { ctx.payload });
                let client = rpclib::RpcBuilder::new(&net, a, 10).build();
                client
                    .call(server.addr(), 1, Bytes::from_static(b"ping"))
                    .await
                    .unwrap()
            });
            black_box(out)
        });
    });
}

fn bench_gfam(c: &mut Criterion) {
    use dmcxl::GFam;
    use memsim::ModelParams;
    c.bench_function("gfam/rc_inc_dec", |b| {
        let g = GFam::new(16, ModelParams::new());
        g.rc_init(3);
        b.iter(|| {
            g.rc_inc(black_box(3));
            g.rc_dec(3);
        });
    });
    c.bench_function("gfam/copy_page", |b| {
        let g = GFam::new(16, ModelParams::new());
        g.write_page(0, 0, &[7u8; PAGE_SIZE]);
        g.write_page(1, 0, &[0u8; PAGE_SIZE]);
        b.iter(|| g.copy_page(black_box(0), 1));
    });
}

fn bench_value_codec(c: &mut Criterion) {
    use dmcommon::{DmServerId, Ref};
    use dmrpc::Value;
    c.bench_function("value/encode_decode_byref", |b| {
        let v = Value::ByRef(Ref::Net {
            server: DmServerId(1),
            key: 42,
            len: 1 << 20,
        });
        b.iter(|| {
            let enc = black_box(&v).encode();
            black_box(Value::decode(&enc).unwrap())
        });
    });
    c.bench_function("value/encode_decode_cxl_256pages", |b| {
        let v = Value::ByRef(Ref::Cxl {
            len: 1 << 20,
            pages: (0..256).collect(),
        });
        b.iter(|| {
            let enc = black_box(&v).encode();
            black_box(Value::decode(&enc).unwrap())
        });
    });
}

fn bench_dm_roundtrip_sim(c: &mut Criterion) {
    // Wall-clock cost of a full simulated DM publish + fetch (how expensive
    // the reproduction itself is to run).
    c.bench_function("dm/put_read_ref_4k_sim", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.block_on(async {
                let net = simnet::Network::new(simnet::FabricConfig::default(), 1);
                let dm_node = net.add_node("dm", simnet::NicConfig::default());
                let c_node = net.add_node("c", simnet::NicConfig::default());
                let mem = memsim::NodeMemory::with_defaults("dm", memsim::ModelParams::new());
                let server =
                    dmnet::DmServer::start(&net, dm_node, mem, dmnet::DmServerConfig::default());
                let rpc = rpclib::RpcBuilder::new(&net, c_node, 100).build();
                let dm = dmnet::DmNetClient::connect(rpc, vec![server.addr()])
                    .await
                    .unwrap();
                let r = dm.put_ref(&Bytes::from(vec![7u8; 4096])).await.unwrap();
                let back = dm.read_ref(&r, 0, 4096).await.unwrap();
                black_box(back.len())
            })
        });
    });
}

criterion_group!(
    benches,
    bench_page_manager,
    bench_va_tree,
    bench_histogram,
    bench_wire,
    bench_simulation_engine,
    bench_gfam,
    bench_value_codec,
    bench_dm_roundtrip_sim
);
criterion_main!(benches);
